// Shared helpers of the durability and recovery-fuzz tests: scratch
// directories on disk and logical-state comparison between two catalogs
// (sorted relation dumps plus sorted result enumerations — the shard count
// is deliberately NOT part of the logical state, resharding preserves it).
#ifndef IVME_TESTS_SUPPORT_DURABILITY_H_
#define IVME_TESTS_SUPPORT_DURABILITY_H_

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sharded_catalog.h"

namespace ivme {
namespace testing {

/// mkdtemp-backed scratch directory, removed (one level deep — the durable
/// catalog creates no subdirectories) on destruction.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/ivme_dur_XXXXXX";
    char* created = ::mkdtemp(buf);
    path_ = created != nullptr ? created : "";
  }
  ~TempDir() { Remove(); }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  void Remove() {
    if (path_.empty()) return;
    DIR* dir = ::opendir(path_.c_str());
    if (dir != nullptr) {
      while (struct dirent* entry = ::readdir(dir)) {
        if (std::strcmp(entry->d_name, ".") == 0 || std::strcmp(entry->d_name, "..") == 0) {
          continue;
        }
        ::unlink((path_ + "/" + entry->d_name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }

 private:
  std::string path_;
};

inline std::vector<std::pair<Tuple, Mult>> SortedDump(const ShardedCatalog& catalog,
                                                      const std::string& relation) {
  std::vector<std::pair<Tuple, Mult>> dump = catalog.DumpRelation(relation);
  std::sort(dump.begin(), dump.end());
  return dump;
}

inline std::vector<std::pair<Tuple, Mult>> SortedResult(const ShardedCatalog& catalog,
                                                        const std::string& query) {
  std::vector<std::pair<Tuple, Mult>> result;
  auto it = catalog.Enumerate(query);
  Tuple t;
  Mult m = 0;
  while (it->Next(&t, &m)) result.emplace_back(t, m);
  std::sort(result.begin(), result.end());
  return result;
}

/// "" when `got` and `want` agree on queries, relation contents, and every
/// query's enumerated result; a description of the first difference
/// otherwise. Compares logical state only (shard counts may differ).
inline std::string DiffLogicalState(const ShardedCatalog& got, const ShardedCatalog& want) {
  std::vector<std::string> got_queries = got.QueryNames();
  std::vector<std::string> want_queries = want.QueryNames();
  std::sort(got_queries.begin(), got_queries.end());
  std::sort(want_queries.begin(), want_queries.end());
  if (got_queries != want_queries) return "query sets differ";

  std::vector<std::string> want_relations = want.shard(0).store().RelationNames();
  std::sort(want_relations.begin(), want_relations.end());
  for (const std::string& relation : want_relations) {
    std::vector<std::pair<Tuple, Mult>> got_dump;
    if (!got.TryDumpRelation(relation, &got_dump).ok()) {
      return "relation " + relation + " missing";
    }
    std::sort(got_dump.begin(), got_dump.end());
    if (got_dump != SortedDump(want, relation)) {
      return "relation " + relation + " contents differ (" + std::to_string(got_dump.size()) +
             " vs " + std::to_string(want.DumpRelation(relation).size()) + " entries)";
    }
  }
  const bool want_live = want.num_queries() > 0 && want.shard(0).preprocessed();
  const bool got_live = got.num_queries() > 0 && got.shard(0).preprocessed();
  if (want_live != got_live) return "liveness differs";
  if (want_live) {
    for (const std::string& query : want_queries) {
      if (SortedResult(got, query) != SortedResult(want, query)) {
        return "result of " + query + " differs";
      }
    }
  }
  return "";
}

}  // namespace testing
}  // namespace ivme

#endif  // IVME_TESTS_SUPPORT_DURABILITY_H_
