// Test harness pairing an Engine with a plain Database mirror; results are
// compared against the brute-force evaluator after any operation.
#ifndef IVME_TESTS_SUPPORT_MIRROR_H_
#define IVME_TESTS_SUPPORT_MIRROR_H_

#include <sstream>
#include <string>

#include "src/baselines/brute_force.h"
#include "src/core/engine.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace testing {

class MirroredEngine {
 public:
  MirroredEngine(const std::string& query_text, EngineOptions options)
      : query_(MustParse(query_text)), engine_(query_, options) {
    for (const auto& name : query_.RelationNames()) {
      for (const auto& atom : query_.atoms()) {
        if (atom.relation == name) {
          mirror_.AddRelation(name, atom.schema);
          break;
        }
      }
    }
  }

  Engine& engine() { return engine_; }
  const ConjunctiveQuery& query() const { return query_; }
  Database& mirror() { return mirror_; }

  void Load(const std::string& relation, const Tuple& tuple, Mult mult = 1) {
    engine_.LoadTuple(relation, tuple, mult);
    mirror_.Find(relation)->Apply(tuple, mult);
  }

  void Preprocess() { engine_.Preprocess(); }

  bool Update(const std::string& relation, const Tuple& tuple, Mult mult) {
    const bool accepted = engine_.ApplyUpdate(relation, tuple, mult);
    if (accepted) mirror_.Find(relation)->Apply(tuple, mult);
    return accepted;
  }

  /// Applies a batch to the engine and the same records one at a time to
  /// the mirror. Only for valid batches (no net delete below zero): a
  /// rejected net entry would leave engine and mirror disagreeing, which is
  /// exactly what Diff() is meant to catch.
  Engine::BatchResult UpdateBatch(const std::vector<ivme::Update>& batch) {
    const auto result = engine_.ApplyBatch(batch);
    for (const auto& u : batch) mirror_.Find(u.relation)->Apply(u.tuple, u.mult);
    return result;
  }

  /// Compares the engine's enumeration with brute force; empty string on
  /// success, a diagnostic otherwise.
  std::string Diff() {
    const QueryResult expected = BruteForceEvaluate(query_, mirror_);
    const QueryResult actual = engine_.EvaluateToMap();
    std::ostringstream out;
    for (const auto& [tuple, mult] : expected) {
      auto it = actual.find(tuple);
      if (it == actual.end()) {
        out << "missing " << tuple.ToString() << " (mult " << mult << "); ";
      } else if (it->second != mult) {
        out << "tuple " << tuple.ToString() << " mult " << it->second << " expected " << mult
            << "; ";
      }
    }
    for (const auto& [tuple, mult] : actual) {
      if (expected.find(tuple) == expected.end()) {
        out << "spurious " << tuple.ToString() << " (mult " << mult << "); ";
      }
    }
    return out.str();
  }

  /// Engine invariants plus result equality.
  std::string FullCheck() {
    std::string error;
    if (!engine_.CheckInvariants(&error)) return "invariant: " + error;
    return Diff();
  }

 private:
  ConjunctiveQuery query_;
  Engine engine_;
  Database mirror_;
};

}  // namespace testing
}  // namespace ivme

#endif  // IVME_TESTS_SUPPORT_MIRROR_H_
