// Random hierarchical query generation for differential testing: build a
// random canonical-variable-order-shaped forest, place atoms on its
// root-to-leaf paths, and pick a random set of free variables. Every query
// produced is hierarchical by construction and exercises shapes the
// hand-picked catalog misses (chains of shared variables, atoms at inner
// path positions, bound-under-bound nesting, multiple components).
#ifndef IVME_TESTS_SUPPORT_RANDOM_QUERIES_H_
#define IVME_TESTS_SUPPORT_RANDOM_QUERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/query/query.h"

namespace ivme {
namespace testing {

struct RandomQueryOptions {
  int max_components = 2;
  int max_depth = 3;      ///< variable-path depth per tree
  int max_branch = 3;     ///< children per variable node
  int max_atoms = 6;      ///< global atom budget
  double free_prob = 0.5; ///< probability each variable is free
};

inline ConjunctiveQuery RandomHierarchicalQuery(Rng& rng, const RandomQueryOptions& opts) {
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  int var_counter = 0;
  int atom_counter = 0;
  std::vector<std::string> all_vars;

  // Grows one subtree: `path` holds the variables on the root path. Always
  // places at least one atom per leaf path (canonical shape).
  std::function<void(std::vector<std::string>, int)> grow =
      [&](std::vector<std::string> path, int depth) {
        // Chain of 1..2 fresh variables at this level.
        const int chain = 1 + static_cast<int>(rng.Below(2));
        for (int c = 0; c < chain; ++c) {
          const std::string v = "V" + std::to_string(var_counter++);
          all_vars.push_back(v);
          path.push_back(v);
        }
        const bool can_descend =
            depth < opts.max_depth && atom_counter < opts.max_atoms && rng.Chance(0.6);
        int branches = 0;
        if (can_descend) {
          branches = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(opts.max_branch)));
        }
        // An atom covering exactly this path (keeps the order canonical),
        // mandatory at leaves, optional at inner nodes.
        if (branches == 0 || rng.Chance(0.5)) {
          atoms.push_back({"R" + std::to_string(atom_counter++), path});
        }
        for (int b = 0; b < branches && atom_counter < opts.max_atoms; ++b) {
          grow(path, depth + 1);
        }
      };

  const int components = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(opts.max_components)));
  for (int c = 0; c < components && atom_counter < opts.max_atoms; ++c) {
    grow({}, 0);
  }

  std::vector<std::string> head;
  for (const auto& v : all_vars) {
    if (rng.Chance(opts.free_prob)) head.push_back(v);
  }
  return ConjunctiveQuery::Make("Q", head, atoms);
}

}  // namespace testing
}  // namespace ivme

#endif  // IVME_TESTS_SUPPORT_RANDOM_QUERIES_H_
