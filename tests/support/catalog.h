// Catalog of the paper's queries, shared by unit, integration, and property
// tests. Each entry records the classification and widths the paper states
// (or that follow from its definitions).
#ifndef IVME_TESTS_SUPPORT_CATALOG_H_
#define IVME_TESTS_SUPPORT_CATALOG_H_

#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/query/query.h"

namespace ivme {
namespace testing {

struct CatalogEntry {
  std::string label;
  std::string text;
  bool hierarchical;
  bool q_hierarchical;   // meaningful only when hierarchical
  bool free_connex;
  int static_width;      // -1 when not hierarchical (undefined here)
  int dynamic_width;     // -1 when not hierarchical
};

inline std::vector<CatalogEntry> PaperQueryCatalog() {
  return {
      // label, text, hier, q-hier, free-connex, w, delta
      {"q_hier_2atom", "Q(A, B) = R(A, B), S(A)", true, true, true, 1, 0},
      {"ex29_free_connex_d1", "Q(A) = R(A, B), S(B)", true, false, true, 1, 1},
      {"ex28_matmul", "Q(A, C) = R(A, B), S(B, C)", true, false, false, 2, 1},
      {"ex18_free_connex", "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", true, false, true, 1,
       1},
      {"ex19_four_atoms", "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", true,
       false, false, 3, 3},
      {"ex12_free_connex", "Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)", true,
       false, true, 1, 1},
      {"star_d1", "Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)", true, false, false, 2, 1},
      {"star_d2", "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", true, false, false, 3, 2},
      {"star_d3", "Q(Y0, Y1, Y2, Y3) = R0(X, Y0), R1(X, Y1), R2(X, Y2), R3(X, Y3)", true, false,
       false, 4, 3},
      {"boolean_hier", "Q() = R(A, B), S(B)", true, true, true, 1, 0},
      {"full_join", "Q(A, B, C) = R(A, B), S(A, B, C)", true, true, true, 1, 0},
      {"cartesian_q_hier", "Q(A, B) = R(A), S(B)", true, true, true, 1, 0},
      {"cartesian_mixed", "Q(A, C) = R(A, B), S(B, C), T(D), U(D, E)", true, false, false, 2, 1},
      {"path3_nonhier", "Q(A, C) = R(A, B), S(B, C), T(C)", false, false, false, -1, -1},
      {"triangle", "Q(A, B, C) = R(A, B), S(B, C), T(A, C)", false, false, false, -1, -1},
      {"single_atom_full", "Q(A, B) = R(A, B)", true, true, true, 1, 0},
      {"single_atom_proj", "Q(A) = R(A, B)", true, true, true, 1, 0},
      {"single_atom_bool", "Q() = R(A, B)", true, true, true, 1, 0},
      // Example 18 with E free instead of D: the bound variables never
      // dominate free ones, so it is q-hierarchical.
      {"ex18_variant_qhier", "Q(A, B, E) = R(A, B, C), S(A, B, D), T(A, E)", true, true, true,
       1, 0},
      // Deep nested chain with only the deepest variable free: free-connex
      // but not q-hierarchical (bound C dominates free D).
      {"deep_chain_d1", "Q(D) = R(A, B, C, D), S(A, B, C), T(A, B), U(A)", true, false, true, 1,
       1},
      // Two bound branches under a free root; one branch violates
      // free-connexness (D, E below bound B), the other does not.
      {"two_branch_w2", "Q(A, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F)", true, false,
       false, 2, 1},
  };
}

/// Hierarchical entries only (queries the engine accepts).
inline std::vector<CatalogEntry> HierarchicalCatalog() {
  std::vector<CatalogEntry> out;
  for (auto& e : PaperQueryCatalog()) {
    if (e.hierarchical) out.push_back(e);
  }
  return out;
}

inline ConjunctiveQuery MustParse(const std::string& text) {
  auto q = ConjunctiveQuery::Parse(text);
  IVME_CHECK_MSG(q.has_value(), "catalog query failed to parse: " << text);
  return *q;
}

}  // namespace testing
}  // namespace ivme

#endif  // IVME_TESTS_SUPPORT_CATALOG_H_
