// Dynamic evaluation (Theorem 4): updates with rebalancing must track brute
// force exactly, for every hierarchical catalog query and every ε.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions DynOpts(double eps) {
  EngineOptions o;
  o.mode = EvalMode::kDynamic;
  o.epsilon = eps;
  return o;
}

size_t ArityOf(const ConjunctiveQuery& q, const std::string& relation) {
  for (const auto& atom : q.atoms()) {
    if (atom.relation == relation) return atom.schema.size();
  }
  return 0;
}

class DynamicSweepTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DynamicSweepTest, RandomUpdateStreamTracksBruteForce) {
  const auto [query_idx, eps] = GetParam();
  const auto entry = testing::HierarchicalCatalog()[static_cast<size_t>(query_idx)];
  MirroredEngine m(entry.text, DynOpts(eps));
  Rng rng(1234 + static_cast<uint64_t>(query_idx));

  const auto names = m.query().RelationNames();
  // Small initial load.
  for (const auto& name : names) {
    const size_t arity = ArityOf(m.query(), name);
    for (int i = 0; i < 15; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity; ++j) t.PushBack(rng.Range(0, 5));
      m.Load(name, t, 1);
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.Diff(), "") << entry.label << " after preprocess";

  // Mixed inserts/deletes across all relations; compare periodically.
  for (int step = 0; step < 300; ++step) {
    const auto& name = names[rng.Below(names.size())];
    const size_t arity = ArityOf(m.query(), name);
    Tuple t;
    for (size_t j = 0; j < arity; ++j) t.PushBack(rng.Range(0, 5));
    const Mult mult = rng.Chance(0.4) ? -1 : 1;
    m.Update(name, t, mult);  // invalid deletes are rejected by both sides
    if (step % 50 == 49) {
      ASSERT_EQ(m.Diff(), "") << entry.label << " eps=" << eps << " step=" << step;
    }
  }
  EXPECT_EQ(m.FullCheck(), "") << entry.label << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueriesAllEps, DynamicSweepTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(testing::HierarchicalCatalog().size())),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      const auto entry =
          testing::HierarchicalCatalog()[static_cast<size_t>(std::get<0>(info.param))];
      return entry.label + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(EngineDynamicTest, StartsFromEmptyDatabase) {
  // OMv-style usage: preprocessing on the empty database is O(1), then
  // everything arrives as updates.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  EXPECT_EQ(m.Diff(), "");
  for (Value i = 0; i < 8; ++i) {
    m.Update("R", Tuple{i, i % 3}, 1);
    m.Update("S", Tuple{i % 3, i}, 1);
  }
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, DeleteToEmptyAndRebuild) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(0.5));
  m.Preprocess();
  const auto tuples = workload::UniformTuples(40, 2, 12, 3);
  for (const auto& t : tuples) m.Update("R", t, 1);
  for (const auto& t : tuples) m.Update("S", Tuple{t[1]}, 1);
  ASSERT_EQ(m.Diff(), "");
  // Delete everything (S first, duplicates collapse via multiplicities).
  for (const auto& t : tuples) m.Update("S", Tuple{t[1]}, -1);
  for (const auto& t : tuples) m.Update("R", t, -1);
  EXPECT_EQ(m.FullCheck(), "");
  EXPECT_TRUE(m.engine().EvaluateToMap().empty());
  EXPECT_EQ(m.engine().database_size(), 0u);
  // Rebuild after emptying.
  for (const auto& t : tuples) m.Update("R", t, 1);
  for (const auto& t : tuples) m.Update("S", Tuple{t[1]}, 1);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, RejectsInvalidDeletes) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(0.5));
  m.Preprocess();
  EXPECT_FALSE(m.Update("R", Tuple{1, 2}, -1));
  ASSERT_TRUE(m.Update("R", Tuple{1, 2}, 2));
  EXPECT_FALSE(m.Update("R", Tuple{1, 2}, -3));
  EXPECT_TRUE(m.Update("R", Tuple{1, 2}, -2));
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, MultiplicityUpdatesAccumulate) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1, 7}, 3);
  m.Update("S", Tuple{7, 2}, 2);
  auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{1, 2}), 6);
  m.Update("R", Tuple{1, 7}, -1);
  result = m.engine().EvaluateToMap();
  EXPECT_EQ(result.at(Tuple{1, 2}), 4);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, HeavyKeyMigration) {
  // Grow one join key's degree step by step across the light→heavy
  // boundary, then shrink it back; results must match at every step.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  m.Update("S", Tuple{0, 100}, 1);
  for (Value a = 0; a < 40; ++a) {
    ASSERT_TRUE(m.Update("R", Tuple{a, 0}, 1));
    ASSERT_EQ(m.FullCheck(), "") << "insert a=" << a;
  }
  for (Value a = 0; a < 40; ++a) {
    ASSERT_TRUE(m.Update("R", Tuple{a, 0}, -1));
    ASSERT_EQ(m.FullCheck(), "") << "delete a=" << a;
  }
}

TEST(EngineDynamicTest, MajorRebalancingTriggersOnGrowth) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  m.Preprocess();
  for (Value i = 0; i < 200; ++i) {
    m.Update("R", Tuple{i, i % 4}, 1);
    m.Update("S", Tuple{i % 4, i}, 1);
  }
  // N grew from 0 to 400: M doubled repeatedly.
  EXPECT_GT(m.engine().GetStats().major_rebalances, 0u);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, MinorRebalancingTriggersOnDegreeSwings) {
  // Keep N (and hence M and θ) stable while one key's degree swings across
  // the light/heavy bands: evicted to heavy on the way up, readmitted to
  // light on the way down.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", DynOpts(0.5));
  for (Value i = 0; i < 1000; ++i) m.Load("R", Tuple{i, 100000 + i}, 1);
  m.Load("S", Tuple{7, 1}, 1);
  m.Preprocess();  // M ≈ 2002, θ ≈ 45
  const auto before = m.engine().GetStats();
  EXPECT_EQ(before.major_rebalances, 0u);
  for (Value j = 0; j < 100; ++j) {
    ASSERT_TRUE(m.Update("R", Tuple{2000 + j, 7}, 1));
  }
  const auto grown = m.engine().GetStats();
  EXPECT_GE(grown.minor_rebalances, 1u);  // key 7 evicted from the light part
  ASSERT_EQ(m.FullCheck(), "");
  for (Value j = 0; j < 100; ++j) {
    ASSERT_TRUE(m.Update("R", Tuple{2000 + j, 7}, -1));
  }
  const auto shrunk = m.engine().GetStats();
  EXPECT_GE(shrunk.minor_rebalances, 2u);  // ... and readmitted on the way down
  EXPECT_EQ(shrunk.major_rebalances, 0u);  // N stayed within [M/4, M)
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, RebalancingDisabledStillCorrect) {
  EngineOptions opts = DynOpts(0.5);
  opts.enable_rebalancing = false;
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", opts);
  for (Value i = 0; i < 30; ++i) m.Load("R", Tuple{i, i % 3}, 1);
  for (Value i = 0; i < 30; ++i) m.Load("S", Tuple{i % 3, i}, 1);
  m.Preprocess();
  for (Value i = 0; i < 60; ++i) {
    m.Update("R", Tuple{100 + i, i % 5}, 1);
    m.Update("S", Tuple{i % 5, 100 + i}, 1);
  }
  // Partitions drift (no rebalance), but results stay exact.
  EXPECT_EQ(m.Diff(), "");
  EXPECT_EQ(m.engine().GetStats().minor_rebalances, 0u);
  EXPECT_EQ(m.engine().GetStats().major_rebalances, 0u);
}

TEST(EngineDynamicTest, SelfJoinUpdates) {
  MirroredEngine m("Q(B, C) = R(A, B), R(A, C)", DynOpts(0.5));
  m.Preprocess();
  Rng rng(9);
  for (int step = 0; step < 120; ++step) {
    const Tuple t{rng.Range(0, 5), rng.Range(0, 5)};
    m.Update("R", t, rng.Chance(0.3) ? -1 : 1);
    if (step % 20 == 19) {
      ASSERT_EQ(m.Diff(), "") << "step " << step;
    }
  }
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EngineDynamicTest, Example19UpdateStream) {
  MirroredEngine m("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
                   DynOpts(0.5));
  m.Preprocess();
  Rng rng(42);
  const std::vector<std::string> names = {"R", "S", "T", "U"};
  for (int step = 0; step < 400; ++step) {
    const auto& name = names[rng.Below(4)];
    Tuple t{rng.Range(0, 3), rng.Range(0, 3), rng.Range(0, 3)};
    m.Update(name, t, rng.Chance(0.35) ? -1 : 1);
    if (step % 80 == 79) {
      ASSERT_EQ(m.FullCheck(), "") << "step " << step;
    }
  }
}

TEST(EngineDynamicTest, InsertDeleteRoundTripRestoresEmptyViews) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", DynOpts(0.25));
  m.Preprocess();
  const auto tuples = workload::UniformTuples(60, 2, 15, 5);
  const auto stream = workload::InsertDeleteRoundTrip("R", tuples, 6);
  for (const auto& update : stream) {
    ASSERT_TRUE(m.Update(update.relation, update.tuple, update.mult));
  }
  EXPECT_EQ(m.FullCheck(), "");
  const auto stats = m.engine().GetStats();
  EXPECT_EQ(stats.view_tuples, 0u) << "views must be empty after the round trip";
}

}  // namespace
}  // namespace ivme
