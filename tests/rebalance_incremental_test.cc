// Deamortized (incremental) major rebalancing: differential fuzzing of
// RebalanceMode::kIncremental against kAmortized and brute force, with the
// internal invariants — including the in-migration θ-envelope relaxation —
// asserted after every step. Covers random single-tuple streams, randomly
// chunked batches, deletes that shrink N back across the M/4 floor while a
// migration is still in flight (forcing retarget/restart), and the sharded
// K ∈ {2, 3} paths where every shard progresses its own migration.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/brute_force.h"
#include "src/core/engine.h"
#include "src/core/sharded_engine.h"
#include "src/query/classify.h"
#include "tests/support/catalog.h"
#include "tests/support/random_queries.h"

namespace ivme {
namespace {

using testing::MustParse;
using testing::RandomHierarchicalQuery;
using testing::RandomQueryOptions;

std::string DiffResults(const QueryResult& expected, const QueryResult& actual,
                        const char* who) {
  std::ostringstream out;
  for (const auto& [tuple, mult] : expected) {
    auto it = actual.find(tuple);
    if (it == actual.end()) {
      out << who << " missing " << tuple.ToString() << " (mult " << mult << "); ";
    } else if (it->second != mult) {
      out << who << " tuple " << tuple.ToString() << " mult " << it->second << " expected "
          << mult << "; ";
    }
  }
  for (const auto& [tuple, mult] : actual) {
    if (expected.find(tuple) == expected.end()) {
      out << who << " spurious " << tuple.ToString() << " (mult " << mult << "); ";
    }
  }
  return out.str();
}

/// An amortized engine, an incremental engine, and a plain Database mirror
/// fed the same accepted updates; checks compare both engines against brute
/// force and run both engines' internal invariants (the incremental one
/// exercises the θ-envelope relaxation whenever a migration is in flight).
class DualModeHarness {
 public:
  DualModeHarness(const ConjunctiveQuery& q, double eps, double budget = 8.0)
      : query_(q),
        amortized_(q, MakeOptions(eps, RebalanceMode::kAmortized, budget)),
        incremental_(q, MakeOptions(eps, RebalanceMode::kIncremental, budget)) {
    for (const auto& name : query_.RelationNames()) {
      for (const auto& atom : query_.atoms()) {
        if (atom.relation == name) {
          mirror_.AddRelation(name, atom.schema);
          break;
        }
      }
    }
  }

  static EngineOptions MakeOptions(double eps, RebalanceMode mode, double budget = 8.0) {
    EngineOptions opts;
    opts.epsilon = eps;
    opts.mode = EvalMode::kDynamic;
    opts.rebalance_mode = mode;
    opts.rebalance_budget = budget;
    return opts;
  }

  const ConjunctiveQuery& query() const { return query_; }
  Engine& incremental() { return incremental_; }

  void Load(const std::string& relation, const Tuple& tuple) {
    amortized_.LoadTuple(relation, tuple, 1);
    incremental_.LoadTuple(relation, tuple, 1);
    mirror_.Find(relation)->Apply(tuple, 1);
  }

  void Preprocess() {
    amortized_.Preprocess();
    incremental_.Preprocess();
  }

  void Update(const std::string& relation, const Tuple& tuple, Mult mult) {
    const bool a = amortized_.ApplyUpdate(relation, tuple, mult);
    const bool b = incremental_.ApplyUpdate(relation, tuple, mult);
    ASSERT_EQ(a, b) << "modes disagree on accepting " << relation << tuple.ToString();
    if (a) mirror_.Find(relation)->Apply(tuple, mult);
  }

  void UpdateBatch(const std::vector<ivme::Update>& batch) {
    const auto a = amortized_.ApplyBatch(batch);
    const auto b = incremental_.ApplyBatch(batch);
    ASSERT_EQ(a.applied, b.applied);
    ASSERT_EQ(a.rejected, b.rejected);
    ASSERT_EQ(a.rejected, 0u) << "harness batches must be valid";
    for (const auto& u : batch) mirror_.Find(u.relation)->Apply(u.tuple, u.mult);
  }

  /// Both engines' invariants; "" on success.
  std::string CheckInvariants() {
    std::string error;
    if (!amortized_.CheckInvariants(&error)) return "amortized invariant: " + error;
    if (!incremental_.CheckInvariants(&error)) return "incremental invariant: " + error;
    return "";
  }

  /// Invariants plus three-way result equality (each mode vs brute force).
  std::string FullCheck() {
    std::string error = CheckInvariants();
    if (!error.empty()) return error;
    const QueryResult expected = BruteForceEvaluate(query_, mirror_);
    error = DiffResults(expected, amortized_.EvaluateToMap(), "amortized");
    if (!error.empty()) return error;
    return DiffResults(expected, incremental_.EvaluateToMap(), "incremental");
  }

 private:
  ConjunctiveQuery query_;
  Engine amortized_;
  Engine incremental_;
  Database mirror_;
};

size_t ArityOf(const ConjunctiveQuery& q, const std::string& name) {
  for (const auto& atom : q.atoms()) {
    if (atom.relation == name) return atom.schema.size();
  }
  return 0;
}

class IncrementalFuzzTest : public ::testing::TestWithParam<int> {};

// Random hierarchical queries × random single-tuple streams, incremental vs
// amortized vs brute force, invariants after EVERY update (so every
// intermediate migration state is validated, not just quiescent points).
TEST_P(IncrementalFuzzTest, SingleUpdateStream) {
  Rng rng(0xDEA0000ull + static_cast<uint64_t>(GetParam()));
  const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
  ASSERT_TRUE(IsHierarchical(q)) << q.ToString();
  const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
  DualModeHarness m(q, eps);

  const Value domain = static_cast<Value>(2 + rng.Below(4));
  const auto names = q.RelationNames();
  for (const auto& name : names) {
    const int count = static_cast<int>(rng.Below(25));
    for (int i = 0; i < count; ++i) {
      Tuple t;
      for (size_t j = 0; j < ArityOf(q, name); ++j) t.PushBack(rng.Range(0, domain));
      m.Load(name, t);
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " (preprocess)";

  for (int step = 0; step < 120; ++step) {
    const auto& name = names[rng.Below(names.size())];
    Tuple t;
    for (size_t j = 0; j < ArityOf(q, name); ++j) t.PushBack(rng.Range(0, domain));
    m.Update(name, t, rng.Chance(0.4) ? -1 : 1);
    ASSERT_EQ(m.CheckInvariants(), "")
        << q.ToString() << " eps=" << eps << " step=" << step;
    if (step % 10 == 9) {
      ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " step=" << step;
    }
  }
  EXPECT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzzTest, ::testing::Range(0, 20));

class IncrementalBatchFuzzTest : public ::testing::TestWithParam<int> {};

// Randomly chunked batches (deletes drawn from the live multiset, so every
// chunk is valid under net-delta consolidation) through both modes, with
// per-chunk invariant + result checks.
TEST_P(IncrementalBatchFuzzTest, RandomlyChunkedStream) {
  Rng rng(0xDEAB000ull + static_cast<uint64_t>(GetParam()));
  const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
  ASSERT_TRUE(IsHierarchical(q)) << q.ToString();
  const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
  DualModeHarness m(q, eps);

  const Value domain = static_cast<Value>(2 + rng.Below(4));
  const auto names = q.RelationNames();
  std::vector<std::vector<Tuple>> live(names.size());
  for (size_t r = 0; r < names.size(); ++r) {
    const int count = static_cast<int>(rng.Below(25));
    for (int i = 0; i < count; ++i) {
      Tuple t;
      for (size_t j = 0; j < ArityOf(q, names[r]); ++j) t.PushBack(rng.Range(0, domain));
      m.Load(names[r], t);
      live[r].push_back(std::move(t));
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " (preprocess)";

  for (int step = 0; step < 12; ++step) {
    std::vector<ivme::Update> batch;
    const size_t batch_size = 1 + rng.Below(40);
    while (batch.size() < batch_size) {
      const size_t r = rng.Below(names.size());
      if (!live[r].empty() && rng.Chance(0.45)) {
        const size_t pick = rng.Below(live[r].size());
        batch.push_back(ivme::Update{names[r], live[r][pick], -1});
        live[r][pick] = live[r].back();
        live[r].pop_back();
      } else {
        Tuple t;
        for (size_t j = 0; j < ArityOf(q, names[r]); ++j) t.PushBack(rng.Range(0, domain));
        live[r].push_back(t);
        batch.push_back(ivme::Update{names[r], std::move(t), 1});
      }
    }
    m.UpdateBatch(batch);
    ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalBatchFuzzTest, ::testing::Range(0, 15));

// Deterministic mid-migration shrink: grow N across the doubling threshold
// with a tiny slice budget so the migration queue outlives many updates,
// then — while keys are still pending — batch-delete until N crosses the
// new M/4 floor in one step, forcing a retarget/restart of the in-flight
// migration. Invariants (θ-envelope form) hold after every update; the
// final state matches brute force and the migration eventually drains.
TEST(IncrementalRebalanceTest, DeleteAcrossFloorMidMigration) {
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  // Budget 0.1·θ per record bottoms out at the 32-step floor, so the
  // per-update slices scan only a few dozen of the ~900 snapshot keys.
  DualModeHarness m(q, 0.5, /*budget=*/0.1);
  // Many distinct join keys (R keys 2000+i all distinct, S keys overlap
  // R's first 151 so the join has content): the snapshot queue holds ~1000
  // keys, far more than the slices consume before the shrink interrupts.
  for (Value i = 0; i < 300; ++i) {
    m.Load("R", Tuple{i + 1000, 2000 + i});
    m.Load("S", Tuple{2000 + (i % 151), i + 50000});
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "");

  // Grow past M = 2N+1 = 1201 via single-tuple inserts; the crossing
  // starts a migration whose queue must survive at least one update.
  std::vector<ivme::Update> inserted;
  Value next = 100000;
  bool saw_active = false;
  while (m.incremental().database_size() < 1210) {
    const Tuple t{next, 7000 + next % 563};
    ++next;
    m.Update("R", t, 1);
    inserted.push_back(ivme::Update{"R", t, -1});
    ASSERT_EQ(m.CheckInvariants(), "") << "grow N=" << m.incremental().database_size();
    saw_active = saw_active || m.incremental().GetStats().rebalance_pending > 0;
  }
  EXPECT_GE(m.incremental().GetStats().major_rebalances, 1u);
  EXPECT_TRUE(saw_active) << "growth never left a migration pending";
  ASSERT_GT(m.incremental().GetStats().rebalance_pending, 0u)
      << "queue drained before the shrink could interrupt it";

  // One batch deletes 620 tuples: N collapses from 1210 below the new
  // floor ⌊M/4⌋ = ⌊2402/4⌋ = 600 while the growth migration still has
  // pending keys — FinishBatch must retarget and restart the scan.
  const size_t restarts_before = m.incremental().GetStats().rebalance_restarts;
  std::vector<ivme::Update> shrink(inserted.begin(), inserted.begin() + 610);
  for (Value i = 0; i < 10; ++i) {
    shrink.push_back(ivme::Update{"R", Tuple{i + 1000, 2000 + i}, -1});
  }
  m.UpdateBatch(shrink);
  const auto stats = m.incremental().GetStats();
  EXPECT_GE(stats.major_rebalances, 2u);  // both directions fired
  EXPECT_GT(stats.rebalance_restarts, restarts_before)
      << "floor crossing mid-migration must retarget the task";
  ASSERT_EQ(m.FullCheck(), "");

  // Drain: cheap churn until no keys are pending, then a final full check.
  Value churn = 900000;
  for (int i = 0; i < 3000 && m.incremental().GetStats().rebalance_pending > 0; ++i) {
    m.Update("S", Tuple{2000 + churn % 151, churn}, 1);
    ++churn;
    ASSERT_EQ(m.CheckInvariants(), "") << "drain i=" << i;
  }
  EXPECT_EQ(m.incremental().GetStats().rebalance_pending, 0u);
  ASSERT_EQ(m.FullCheck(), "");
}

// The migration machinery reports its work: growing far enough to flip
// keys must show slices and scanned keys in the stats.
TEST(IncrementalRebalanceTest, StatsAccountMigrationWork) {
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts = DualModeHarness::MakeOptions(0.5, RebalanceMode::kIncremental);
  Engine engine(q, opts);
  for (Value i = 0; i < 200; ++i) {
    engine.LoadTuple("R", Tuple{i, i % 11}, 1);
    engine.LoadTuple("S", Tuple{i % 11, i}, 1);
  }
  engine.Preprocess();
  for (Value i = 0; i < 900; ++i) {
    engine.ApplyUpdate("R", Tuple{10000 + i, i % 7}, 1);
  }
  const auto stats = engine.GetStats();
  EXPECT_GE(stats.major_rebalances, 1u);
  EXPECT_GE(stats.rebalance_slices, 1u);
  std::string error;
  EXPECT_TRUE(engine.CheckInvariants(&error)) << error;
  // Latency instrumentation rode along: every ApplyUpdate was recorded.
  EXPECT_EQ(engine.update_latency().count(), 900u);
  EXPECT_GT(engine.update_latency().MaxSeconds(), 0.0);
}

struct ShardedCase {
  std::string query;
  size_t shards;
};

class ShardedIncrementalTest : public ::testing::TestWithParam<ShardedCase> {};

// Sharded engines in incremental mode: every shard progresses its own
// migration inside the existing pool barrier; results must match brute
// force and per-shard invariants (incl. the θ envelope) must hold.
TEST_P(ShardedIncrementalTest, BatchesAcrossMigrations) {
  const ShardedCase& param = GetParam();
  const auto q = MustParse(param.query);
  std::string why;
  ASSERT_TRUE(ShardedEngine::CanShard(q, &why)) << why;

  ShardedEngineOptions opts;
  opts.engine = DualModeHarness::MakeOptions(0.5, RebalanceMode::kIncremental);
  opts.num_shards = param.shards;
  opts.num_threads = param.shards;
  ShardedEngine sharded(q, opts);

  Database mirror;
  for (const auto& name : q.RelationNames()) {
    for (const auto& atom : q.atoms()) {
      if (atom.relation == name) {
        mirror.AddRelation(name, atom.schema);
        break;
      }
    }
  }

  // Join columns (variables shared between atoms) draw from a small domain
  // so the views have content; the other columns draw from a wide domain so
  // inserts create DISTINCT tuples — N must actually grow past M to cross
  // the doubling threshold on every shard.
  std::vector<int> atom_occurrences(q.num_vars(), 0);
  for (const Atom& atom : q.atoms()) {
    for (size_t j = 0; j < atom.schema.size(); ++j) {
      ++atom_occurrences[static_cast<size_t>(atom.schema.vars()[j])];
    }
  }
  Rng rng(0x5A4D ^ param.shards);
  auto random_tuple = [&](const std::string& name) {
    Tuple t;
    for (const Atom& atom : q.atoms()) {
      if (atom.relation != name) continue;
      for (size_t j = 0; j < atom.schema.size(); ++j) {
        const bool shared = atom_occurrences[static_cast<size_t>(atom.schema.vars()[j])] > 1;
        t.PushBack(rng.Range(0, shared ? 89 : 100000));
      }
      break;
    }
    return t;
  };

  const auto names = q.RelationNames();
  for (const auto& name : names) {
    for (int i = 0; i < 150; ++i) {
      const Tuple t = random_tuple(name);
      sharded.LoadTuple(name, t, 1);
      mirror.Find(name)->Apply(t, 1);
    }
  }
  sharded.Preprocess();

  std::vector<std::vector<Tuple>> live(names.size());
  for (int step = 0; step < 30; ++step) {
    std::vector<ivme::Update> batch;
    const size_t batch_size = 1 + rng.Below(100);
    while (batch.size() < batch_size) {
      const size_t r = rng.Below(names.size());
      if (!live[r].empty() && rng.Chance(0.3)) {
        const size_t pick = rng.Below(live[r].size());
        batch.push_back(ivme::Update{names[r], live[r][pick], -1});
        live[r][pick] = live[r].back();
        live[r].pop_back();
      } else {
        Tuple t = random_tuple(names[r]);
        live[r].push_back(t);
        batch.push_back(ivme::Update{names[r], std::move(t), 1});
      }
    }
    const auto result = sharded.ApplyBatch(batch);
    ASSERT_EQ(result.rejected, 0u) << param.query << " step=" << step;
    for (const auto& u : batch) mirror.Find(u.relation)->Apply(u.tuple, u.mult);

    std::string error;
    ASSERT_TRUE(sharded.CheckInvariants(&error)) << param.query << " step=" << step << ": "
                                                 << error;
    if (step % 5 == 4) {
      const QueryResult expected = BruteForceEvaluate(q, mirror);
      const std::string diff = DiffResults(expected, sharded.EvaluateToMap(), "sharded");
      ASSERT_EQ(diff, "") << param.query << " step=" << step;
    }
  }
  const QueryResult expected = BruteForceEvaluate(q, mirror);
  ASSERT_EQ(DiffResults(expected, sharded.EvaluateToMap(), "sharded"), "") << param.query;
  // The growth crossed thresholds: migrations ran and were accounted
  // (summed across shards).
  EXPECT_GE(sharded.GetStats().major_rebalances, 1u);
  // Per-shard apply latencies merged across shards (quiescent point), and
  // a facade-level reset clears every layer (load-phase exclusion).
  EXPECT_GT(sharded.AggregateBatchLatency().count(), 0u);
  sharded.ResetLatency();
  EXPECT_EQ(sharded.AggregateBatchLatency().count(), 0u);
  EXPECT_EQ(sharded.batch_latency().count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shards, ShardedIncrementalTest,
    ::testing::Values(ShardedCase{"Q(A, C) = R(A, B), S(B, C)", 2},
                      ShardedCase{"Q(A, C) = R(A, B), S(B, C)", 3},
                      ShardedCase{"Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", 2},
                      ShardedCase{"Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", 3}));

}  // namespace
}  // namespace ivme
