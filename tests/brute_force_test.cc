// Tests for the brute-force evaluator (used as ground truth elsewhere).
#include <gtest/gtest.h>

#include "src/baselines/brute_force.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

TEST(BruteForceTest, TwoWayJoinWithProjection) {
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  Database db;
  Relation* r = db.AddRelation("R", Schema({0, 1}));
  Relation* s = db.AddRelation("S", Schema({0, 1}));
  r->Apply(Tuple{1, 10}, 1);
  r->Apply(Tuple{2, 10}, 2);
  s->Apply(Tuple{10, 5}, 3);
  s->Apply(Tuple{11, 6}, 1);

  const auto result = BruteForceEvaluate(q, db);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.at(Tuple{1, 5}), 3);
  EXPECT_EQ(result.at(Tuple{2, 5}), 6);
}

TEST(BruteForceTest, BoundVariablesSumMultiplicities) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  Database db;
  Relation* r = db.AddRelation("R", Schema({0, 1}));
  Relation* s = db.AddRelation("S", Schema({0}));
  r->Apply(Tuple{1, 10}, 1);
  r->Apply(Tuple{1, 11}, 1);
  s->Apply(Tuple{10}, 2);
  s->Apply(Tuple{11}, 5);

  const auto result = BruteForceEvaluate(q, db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{1}), 7);  // 1*2 + 1*5
}

TEST(BruteForceTest, BooleanQuery) {
  const auto q = testing::MustParse("Q() = R(A, B), S(B)");
  Database db;
  Relation* r = db.AddRelation("R", Schema({0, 1}));
  Relation* s = db.AddRelation("S", Schema({0}));
  r->Apply(Tuple{1, 10}, 1);
  auto result = BruteForceEvaluate(q, db);
  EXPECT_TRUE(result.empty());
  s->Apply(Tuple{10}, 4);
  result = BruteForceEvaluate(q, db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{}), 4);
}

TEST(BruteForceTest, SelfJoinWithRepeatedSymbol) {
  const auto q = testing::MustParse("Q(B, C) = R(A, B), R(A, C)");
  Database db;
  Relation* r = db.AddRelation("R", Schema({0, 1}));
  r->Apply(Tuple{1, 10}, 1);
  r->Apply(Tuple{1, 11}, 1);

  const auto result = BruteForceEvaluate(q, db);
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result.at(Tuple{10, 10}), 1);
  EXPECT_EQ(result.at(Tuple{10, 11}), 1);
  EXPECT_EQ(result.at(Tuple{11, 10}), 1);
  EXPECT_EQ(result.at(Tuple{11, 11}), 1);
}

TEST(BruteForceTest, CartesianProduct) {
  const auto q = testing::MustParse("Q(A, B) = R(A), S(B)");
  Database db;
  Relation* r = db.AddRelation("R", Schema({0}));
  Relation* s = db.AddRelation("S", Schema({0}));
  r->Apply(Tuple{1}, 2);
  r->Apply(Tuple{2}, 1);
  s->Apply(Tuple{7}, 3);

  const auto result = BruteForceEvaluate(q, db);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.at(Tuple{1, 7}), 6);
  EXPECT_EQ(result.at(Tuple{2, 7}), 3);
}

TEST(BruteForceTest, EmptyRelationGivesEmptyResult) {
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  Database db;
  db.AddRelation("R", Schema({0, 1}));
  Relation* s = db.AddRelation("S", Schema({0, 1}));
  s->Apply(Tuple{1, 2}, 1);
  EXPECT_TRUE(BruteForceEvaluate(q, db).empty());
}

}  // namespace
}  // namespace ivme
