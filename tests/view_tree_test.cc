// Tests that the constructed view trees match the paper's worked examples:
// Figure 9 (Example 18), Figure 12 (Example 19), Figure 23 (Example 28),
// Figure 24 (Example 29).
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "src/core/engine.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

using testing::MustParse;

EngineOptions Opts(EvalMode mode) {
  EngineOptions o;
  o.mode = mode;
  o.epsilon = 0.5;
  return o;
}

// Number of view nodes (kView) in a subtree.
int CountViews(const ViewNode* node) {
  int count = node->kind == NodeKind::kView ? 1 : 0;
  for (const auto& child : node->children) count += CountViews(child.get());
  return count;
}

// Finds a view whose printable name starts with `prefix`.
const ViewNode* FindView(const ViewNode* node, const std::string& prefix) {
  if (node->name.rfind(prefix, 0) == 0) return node;
  for (const auto& child : node->children) {
    if (const ViewNode* hit = FindView(child.get(), prefix)) return hit;
  }
  return nullptr;
}

std::string SchemaOf(const ConjunctiveQuery& q, const ViewNode* node) {
  return node->schema.ToString(q.var_names());
}

TEST(ViewTreeTest, Example29StaticBuildsSingleFreeConnexTree) {
  // Q(A) = R(A,B), S(B) is free-connex: the static plan is one view tree
  // with root VB(A) over {R(A,B), S(B)} (Figure 24 bottom-left), and no
  // indicator triples.
  const auto q = MustParse("Q(A) = R(A, B), S(B)");
  Engine engine(q, Opts(EvalMode::kStatic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 1u);
  EXPECT_TRUE(plan.triples.empty());
  const ViewNode* root = plan.trees[0]->root.get();
  EXPECT_EQ(root->kind, NodeKind::kView);
  EXPECT_EQ(SchemaOf(q, root), "(A)");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_TRUE(root->children[0]->IsLeaf());
  EXPECT_TRUE(root->children[1]->IsLeaf());
}

TEST(ViewTreeTest, Example29DynamicBuildsHeavyAndLightTrees) {
  // Figure 24: dynamic evaluation partitions on B and keeps two strategies
  // plus the indicator triple (All/L trees and H_B).
  const auto q = MustParse("Q(A) = R(A, B), S(B)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 2u);
  ASSERT_EQ(plan.triples.size(), 1u);
  const IndicatorTriple* triple = plan.triples[0].get();
  EXPECT_EQ(triple->keys.ToString(q.var_names()), "(B)");

  // Heavy tree: VB(B) <- {∃HB(B), R'(B) <- R(A,B), S(B)} — the first tree
  // produced by τ.
  const ViewNode* heavy = plan.trees[0]->root.get();
  EXPECT_EQ(SchemaOf(q, heavy), "(B)");
  ASSERT_EQ(heavy->children.size(), 3u);
  EXPECT_EQ(heavy->indicator_child, 0);
  const ViewNode* r_aux = heavy->children[1].get();
  EXPECT_EQ(r_aux->kind, NodeKind::kView);
  EXPECT_EQ(SchemaOf(q, r_aux), "(B)");
  ASSERT_EQ(r_aux->children.size(), 1u);
  EXPECT_TRUE(r_aux->children[0]->IsLeaf());
  EXPECT_TRUE(heavy->children[2]->IsLeaf());  // S(B) directly

  // Light tree: VB(A) over light parts R^B, S^B.
  const ViewNode* light = plan.trees[1]->root.get();
  EXPECT_EQ(SchemaOf(q, light), "(A)");
  ASSERT_EQ(light->children.size(), 2u);
  for (const auto& child : light->children) {
    ASSERT_TRUE(child->IsLeaf());
    EXPECT_NE(child->partition, nullptr);
  }

  // Indicator trees: AllB(B) <- {AllA(B) <- R, S}; LB(B) similarly over
  // light parts.
  const ViewNode* all_root = triple->all_tree.get();
  EXPECT_EQ(SchemaOf(q, all_root), "(B)");
  ASSERT_EQ(all_root->children.size(), 2u);
  const ViewNode* light_root = triple->light_tree.get();
  EXPECT_EQ(SchemaOf(q, light_root), "(B)");
}

TEST(ViewTreeTest, Example28DynamicShape) {
  // Q(A,C) = R(A,B), S(B,C), Figure 23: heavy tree VB(B) with aux views
  // R'(B), S'(B); light tree VB(A,C) over R^B, S^B.
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 2u);
  ASSERT_EQ(plan.triples.size(), 1u);

  const ViewNode* heavy = plan.trees[0]->root.get();
  EXPECT_EQ(SchemaOf(q, heavy), "(B)");
  ASSERT_EQ(heavy->children.size(), 3u);
  EXPECT_EQ(heavy->indicator_child, 0);
  // Both non-indicator children are aggregated-away aux views over leaves.
  for (size_t i = 1; i < 3; ++i) {
    const ViewNode* aux = heavy->children[i].get();
    EXPECT_EQ(aux->kind, NodeKind::kView);
    EXPECT_EQ(SchemaOf(q, aux), "(B)");
    ASSERT_EQ(aux->children.size(), 1u);
    EXPECT_TRUE(aux->children[0]->IsLeaf());
  }

  const ViewNode* light = plan.trees[1]->root.get();
  EXPECT_EQ(SchemaOf(q, light), "(A, C)");
  EXPECT_EQ(light->enum_mode, EnumMode::kCovering);
}

TEST(ViewTreeTest, Example28StaticShape) {
  // In the static case the heavy tree keeps the full relations under VB(B)
  // without aux views.
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  Engine engine(q, Opts(EvalMode::kStatic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 2u);
  const ViewNode* heavy = plan.trees[0]->root.get();
  ASSERT_EQ(heavy->children.size(), 3u);
  EXPECT_TRUE(heavy->children[1]->IsLeaf());
  EXPECT_TRUE(heavy->children[2]->IsLeaf());
}

TEST(ViewTreeTest, Example18StaticSingleTree) {
  // Free-connex: one tree, VA(A) <- {VB(A,D), T(A,E)} with VB over
  // {VC(A,B), S(A,B,D)} (Figure 9, solid nodes).
  const auto q = MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)");
  Engine engine(q, Opts(EvalMode::kStatic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 1u);
  EXPECT_TRUE(plan.triples.empty());
  const ViewNode* va = plan.trees[0]->root.get();
  EXPECT_EQ(SchemaOf(q, va), "(A)");
  ASSERT_EQ(va->children.size(), 2u);
  const ViewNode* vb = va->children[0].get();
  EXPECT_EQ(SchemaOf(q, vb), "(A, D)");
  ASSERT_EQ(vb->children.size(), 2u);
  const ViewNode* vc = vb->children[0].get();
  EXPECT_EQ(SchemaOf(q, vc), "(A, B)");
  EXPECT_TRUE(va->children[1]->IsLeaf());  // T(A,E)
}

TEST(ViewTreeTest, Example18DynamicAddsAuxViews) {
  // Figure 9's dashed views V'B(A) and T'(A) appear in dynamic mode, on the
  // BuildVT tree (exercised through the full plan's heavy branches for the
  // non-δ0 query; here we call BuildVT directly).
  const auto q = MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)");
  Engine engine(q, Opts(EvalMode::kDynamic));  // provides storage
  const auto vo = VariableOrder::Canonical(q);
  auto tree = BuildVTForTest(q, vo.roots()[0].get(), q.free_vars(), std::nullopt,
                             EvalMode::kDynamic, &engine);
  // Root VA(A) <- {V'B(A) <- VB(A,D), T'(A) <- T(A,E)}.
  EXPECT_EQ(SchemaOf(q, tree.get()), "(A)");
  ASSERT_EQ(tree->children.size(), 2u);
  const ViewNode* vb_aux = tree->children[0].get();
  EXPECT_EQ(SchemaOf(q, vb_aux), "(A)");
  ASSERT_EQ(vb_aux->children.size(), 1u);
  EXPECT_EQ(SchemaOf(q, vb_aux->children[0].get()), "(A, D)");
  const ViewNode* t_aux = tree->children[1].get();
  EXPECT_EQ(SchemaOf(q, t_aux), "(A)");
  ASSERT_EQ(t_aux->children.size(), 1u);
  EXPECT_TRUE(t_aux->children[0]->IsLeaf());
}

TEST(ViewTreeTest, Example19ThreeTreesAndTwoTriples) {
  // Figure 12: three view trees (light-at-A, heavy-A/light-AB,
  // heavy-A/heavy-AB) and indicator triples at A and (A,B).
  const auto q =
      MustParse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  const auto& plan = engine.plan();
  ASSERT_EQ(plan.trees.size(), 3u);
  ASSERT_EQ(plan.triples.size(), 2u);
  // Triples on (A,B) — built during the recursion — and on (A).
  EXPECT_EQ(plan.triples[0]->keys.ToString(q.var_names()), "(A, B)");
  EXPECT_EQ(plan.triples[1]->keys.ToString(q.var_names()), "(A)");

  // The two heavy-A trees have root VA(A) with the ∃H_A gate.
  int heavy_roots = 0;
  int light_roots = 0;
  for (const auto& tree : plan.trees) {
    if (tree->root->indicator_child >= 0) {
      ++heavy_roots;
      EXPECT_EQ(SchemaOf(q, tree->root.get()), "(A)");
    } else {
      ++light_roots;
      EXPECT_EQ(SchemaOf(q, tree->root.get()), "(C, D, E, F)");
      EXPECT_EQ(tree->root->enum_mode, EnumMode::kCovering);
    }
  }
  EXPECT_EQ(heavy_roots, 2);
  EXPECT_EQ(light_roots, 1);

  // The heavy-A/heavy-AB tree nests the second union: some VA root has a
  // descendant with the ∃H_B gate.
  bool found_nested = false;
  for (const auto& tree : plan.trees) {
    if (tree->root->indicator_child < 0) continue;
    std::function<void(const ViewNode*)> scan = [&](const ViewNode* node) {
      if (node != tree->root.get() && node->indicator_child >= 0) found_nested = true;
      for (const auto& child : node->children) scan(child.get());
    };
    scan(tree->root.get());
  }
  EXPECT_TRUE(found_nested);
}

TEST(ViewTreeTest, QHierarchicalDynamicBuildsSingleTree) {
  // δ0-hierarchical queries take the BuildVT fast path in dynamic mode too.
  const auto q = MustParse("Q(A, B) = R(A, B), S(A)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  EXPECT_EQ(engine.plan().trees.size(), 1u);
  EXPECT_TRUE(engine.plan().triples.empty());
}

TEST(ViewTreeTest, CartesianComponentsGetIndependentTrees) {
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C), T(D), U(D, E)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  const auto& plan = engine.plan();
  EXPECT_EQ(plan.num_components, 2);
  // Component 0 (the matmul-like part) has 2 trees; component 1 is Boolean
  // δ0 and has 1.
  int c0 = 0, c1 = 0;
  for (const auto& tree : plan.trees) {
    (tree->component == 0 ? c0 : c1)++;
  }
  EXPECT_EQ(c0, 2);
  EXPECT_EQ(c1, 1);
}

TEST(ViewTreeTest, AllViewsHaveUniqueNamesAndStorage) {
  const auto q =
      MustParse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)");
  Engine engine(q, Opts(EvalMode::kDynamic));
  std::set<std::string> names;
  std::set<const Relation*> storages;
  std::function<void(const ViewNode*)> scan = [&](const ViewNode* node) {
    if (node->kind == NodeKind::kView) {
      EXPECT_TRUE(names.insert(node->name).second) << node->name;
      EXPECT_TRUE(storages.insert(node->storage).second) << node->name;
    }
    for (const auto& child : node->children) scan(child.get());
  };
  for (const auto& tree : engine.plan().trees) scan(tree->root.get());
  for (const auto& triple : engine.plan().triples) {
    scan(triple->all_tree.get());
    scan(triple->light_tree.get());
  }
  EXPECT_GT(names.size(), 5u);
}

}  // namespace
}  // namespace ivme
