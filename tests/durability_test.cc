// Durability unit and integration tests: WAL framing and torn-tail
// detection, snapshot round-trips and retention, and save/open recovery of
// plain, multi-query, and sharded catalogs — every recovered state must
// match a never-closed reference catalog exactly (DumpRelation and result
// enumeration), including checkpoints taken mid-incremental-rebalance.
#include <gtest/gtest.h>

#include <fstream>

#include "src/core/durable_catalog.h"
#include "src/storage/checkpoint.h"
#include "src/storage/serial.h"
#include "src/storage/wal.h"
#include "tests/support/catalog.h"
#include "tests/support/durability.h"

namespace ivme {
namespace {

using testing::DiffLogicalState;
using testing::MustParse;
using testing::SortedDump;
using testing::SortedResult;
using testing::TempDir;

EngineOptions Options(double epsilon = 0.5,
                      RebalanceMode mode = RebalanceMode::kAmortized,
                      double budget = 8.0) {
  EngineOptions options;
  options.epsilon = epsilon;
  options.mode = EvalMode::kDynamic;
  options.rebalance_mode = mode;
  options.rebalance_budget = budget;
  return options;
}

DurabilityOptions Durability(FsyncPolicy fsync = FsyncPolicy::kAlways) {
  DurabilityOptions durability;
  durability.fsync = fsync;
  durability.background_checkpoint = false;  // deterministic in tests
  return durability;
}

// --- WAL layer ------------------------------------------------------------

TEST(WalTest, AppendScanRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/" + WalSegmentFileName(1);
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, FsyncPolicy::kAlways, 1, nullptr).ok());
  for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
    WalRecord record;
    record.lsn = lsn;
    record.type = lsn % 2 == 0 ? WalRecordType::kBatch : WalRecordType::kLoad;
    record.payload = std::string(static_cast<size_t>(lsn * 7), static_cast<char>('a' + lsn));
    ASSERT_TRUE(writer.Append(record).ok());
  }
  EXPECT_EQ(writer.stats().records_appended, 5u);
  EXPECT_EQ(writer.stats().last_lsn, 5u);
  EXPECT_EQ(writer.stats().syncs, 5u);
  writer.Close();

  WalScanResult scan;
  ASSERT_TRUE(ScanWalSegment(path, &scan).ok());
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 5u);
  for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
    EXPECT_EQ(scan.records[lsn - 1].lsn, lsn);
    EXPECT_EQ(scan.records[lsn - 1].payload.size(), lsn * 7);
  }
}

TEST(WalTest, TornTailIsDetectedAndTruncatable) {
  TempDir dir;
  const std::string path = dir.path() + "/" + WalSegmentFileName(1);
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, FsyncPolicy::kOff, 64, nullptr).ok());
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    ASSERT_TRUE(writer.Append(WalRecord{lsn, WalRecordType::kBatch, "payload"}).ok());
  }
  writer.Close();

  // Garbage after the last full record: a crash mid-append.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "\x03garbage-that-is-not-a-frame";
  }
  WalScanResult scan;
  ASSERT_TRUE(ScanWalSegment(path, &scan).ok());
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 3u);

  ASSERT_TRUE(TruncateWalSegment(path, scan.valid_bytes).ok());
  WalScanResult rescan;
  ASSERT_TRUE(ScanWalSegment(path, &rescan).ok());
  EXPECT_FALSE(rescan.torn);
  EXPECT_EQ(rescan.records.size(), 3u);
  EXPECT_EQ(rescan.valid_bytes, scan.valid_bytes);

  // A tear inside a frame (not just after it) drops that record.
  ASSERT_TRUE(TruncateWalSegment(path, scan.valid_bytes - 3).ok());
  WalScanResult mid;
  ASSERT_TRUE(ScanWalSegment(path, &mid).ok());
  EXPECT_TRUE(mid.torn);
  EXPECT_EQ(mid.records.size(), 2u);
}

TEST(WalTest, CorruptedByteStopsTheScanAtThePriorRecord) {
  TempDir dir;
  const std::string path = dir.path() + "/" + WalSegmentFileName(1);
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, FsyncPolicy::kOff, 64, nullptr).ok());
  ASSERT_TRUE(writer.Append(WalRecord{1, WalRecordType::kBatch, "first"}).ok());
  const uint64_t first_end = writer.stats().bytes_appended;
  ASSERT_TRUE(writer.Append(WalRecord{2, WalRecordType::kBatch, "second"}).ok());
  writer.Close();

  // Flip a payload byte of the second record: its CRC must catch it.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() - 1] ^= 0x40;
  ASSERT_TRUE(WriteFileDurable(path, bytes).ok());

  WalScanResult scan;
  ASSERT_TRUE(ScanWalSegment(path, &scan).ok());
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_end);
}

// --- snapshot layer -------------------------------------------------------

SnapshotData SampleSnapshot(uint64_t lsn) {
  SnapshotData data;
  data.lsn = lsn;
  data.num_shards = 2;
  data.live = true;
  data.queries.push_back(SnapshotQuerySpec{"Q", "Q(A, C) = R(A, B), S(B, C)", 0.4, 1, 1, 1, 2.5});
  SnapshotRelation r;
  r.name = "R";
  r.arity = 2;
  r.tuples = {{Tuple({1, 2}), 1}, {Tuple({3, 4}), 5}};
  data.relations.push_back(r);
  return data;
}

TEST(SnapshotTest, WriteListReadRoundTrip) {
  TempDir dir;
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), SampleSnapshot(7), nullptr).ok());
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(ListSnapshots(dir.path(), &lsns).ok());
  ASSERT_EQ(lsns, std::vector<uint64_t>{7});

  SnapshotData loaded;
  ASSERT_TRUE(ReadSnapshotFile(dir.path() + "/" + SnapshotFileName(7), &loaded).ok());
  EXPECT_EQ(loaded.lsn, 7u);
  EXPECT_EQ(loaded.num_shards, 2u);
  EXPECT_TRUE(loaded.live);
  ASSERT_EQ(loaded.queries.size(), 1u);
  EXPECT_EQ(loaded.queries[0].text, "Q(A, C) = R(A, B), S(B, C)");
  EXPECT_DOUBLE_EQ(loaded.queries[0].epsilon, 0.4);
  EXPECT_EQ(loaded.queries[0].rebalance_mode, 1);
  ASSERT_EQ(loaded.relations.size(), 1u);
  EXPECT_EQ(loaded.relations[0].tuples.size(), 2u);
  EXPECT_EQ(loaded.relations[0].tuples[1].second, 5);
}

TEST(SnapshotTest, CorruptionIsACleanError) {
  TempDir dir;
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), SampleSnapshot(3), nullptr).ok());
  const std::string path = dir.path() + "/" + SnapshotFileName(3);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileDurable(path, bytes).ok());
  SnapshotData loaded;
  const Status status = ReadSnapshotFile(path, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos) << status.message();
}

TEST(SnapshotTest, RetainKeepsTheNewest) {
  TempDir dir;
  for (uint64_t lsn : {2u, 5u, 9u, 11u}) {
    ASSERT_TRUE(WriteSnapshotFile(dir.path(), SampleSnapshot(lsn), nullptr).ok());
  }
  ASSERT_TRUE(RetainSnapshots(dir.path(), 2, nullptr).ok());
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(ListSnapshots(dir.path(), &lsns).ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{9, 11}));
}

// --- catalog save/open ----------------------------------------------------

// Drives a durable catalog and an ephemeral reference through the same
// operations, then closes the durable one and re-opens it from disk.
struct DualRig {
  TempDir dir;
  std::unique_ptr<DurableCatalog> durable;
  std::unique_ptr<DurableCatalog> reference;

  explicit DualRig(size_t num_shards = 1) {
    ShardedCatalogOptions options;
    options.num_shards = num_shards;
    durable = std::make_unique<DurableCatalog>(options, Durability());
    reference = std::make_unique<DurableCatalog>(options, Durability());
  }

  void Register(const std::string& name, const std::string& text, EngineOptions options) {
    std::string why;
    ASSERT_TRUE(durable->RegisterQuery(name, MustParse(text), options, &why)) << why;
    ASSERT_TRUE(reference->RegisterQuery(name, MustParse(text), options, &why)) << why;
  }

  void Drop(const std::string& name) {
    ASSERT_TRUE(durable->DropQuery(name));
    ASSERT_TRUE(reference->DropQuery(name));
  }

  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples) {
    ASSERT_TRUE(durable->TryLoad(relation, tuples).ok());
    ASSERT_TRUE(reference->TryLoad(relation, tuples).ok());
  }

  void Preprocess() {
    durable->Preprocess();
    reference->Preprocess();
  }

  void Attach() { ASSERT_TRUE(durable->AttachDir(dir.path()).ok()); }

  void Update(const std::string& relation, const Tuple& tuple, Mult mult) {
    const bool a = durable->ApplyUpdate(relation, tuple, mult);
    const bool b = reference->ApplyUpdate(relation, tuple, mult);
    ASSERT_EQ(a, b);
  }

  void Batch(const UpdateBatch& updates) {
    const BatchResult a = durable->ApplyBatch(updates);
    const BatchResult b = reference->ApplyBatch(updates);
    ASSERT_EQ(a.applied, b.applied);
    ASSERT_EQ(a.rejected, b.rejected);
  }

  /// Closes the durable catalog and recovers it from disk.
  std::unique_ptr<DurableCatalog> Reopen() {
    durable.reset();
    Status status;
    auto reopened =
        DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), Durability(), &status);
    EXPECT_TRUE(status.ok()) << status.message();
    return reopened;
  }
};

TEST(DurableCatalogTest, SaveReopenRestoresExactState) {
  DualRig rig;
  rig.Register("Q", "Q(A, C) = R(A, B), S(B, C)", Options());
  rig.Load("R", {{Tuple({1, 2}), 1}, {Tuple({3, 2}), 2}});
  rig.Load("S", {{Tuple({2, 7}), 1}});
  rig.Preprocess();
  rig.Attach();
  rig.Update("R", Tuple({5, 2}), 1);
  rig.Update("S", Tuple({2, 9}), 3);
  rig.Update("R", Tuple({3, 2}), -1);
  rig.Update("R", Tuple({3, 2}), -5);  // below zero: rejected on both sides
  rig.Batch({Update{"R", Tuple({8, 2}), 1}, Update{"S", Tuple({2, 7}), -1},
             Update{"R", Tuple({8, 2}), -1}});

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
  EXPECT_EQ(SortedDump(reopened->catalog(), "R"), SortedDump(rig.reference->catalog(), "R"));
  EXPECT_EQ(SortedResult(reopened->catalog(), "Q"),
            SortedResult(rig.reference->catalog(), "Q"));
  EXPECT_GT(reopened->durability_stats().replayed_records, 0u);
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

// Background checkpoints (the production default) overlap their file work
// with foreground appends: updates keep flowing while the snapshot is
// written, renamed, and the old WAL segments are deleted on the checkpoint
// thread. TSan runs this suite in CI, so the capture/rotate handshake and
// the foreground-only counter updates are race-checked here.
TEST(DurableCatalogTest, BackgroundCheckpointsInterleaveWithWrites) {
  TempDir dir;
  DurabilityOptions durability;
  durability.fsync = FsyncPolicy::kBatch;
  durability.fsync_interval = 8;
  durability.background_checkpoint = true;
  auto durable = std::make_unique<DurableCatalog>(ShardedCatalogOptions(), durability);
  DurableCatalog reference(ShardedCatalogOptions(), Durability());

  std::string why;
  ASSERT_TRUE(
      durable->RegisterQuery("Q", MustParse("Q(A, C) = R(A, B), S(B, C)"), Options(), &why))
      << why;
  ASSERT_TRUE(
      reference.RegisterQuery("Q", MustParse("Q(A, C) = R(A, B), S(B, C)"), Options(), &why))
      << why;
  ASSERT_TRUE(durable->TryLoad("S", {{Tuple({2, 7}), 1}, {Tuple({3, 9}), 1}}).ok());
  ASSERT_TRUE(reference.TryLoad("S", {{Tuple({2, 7}), 1}, {Tuple({3, 9}), 1}}).ok());
  durable->Preprocess();
  reference.Preprocess();
  ASSERT_TRUE(durable->AttachDir(dir.path()).ok());

  for (int i = 0; i < 200; ++i) {
    const Tuple t({static_cast<Value>(i), static_cast<Value>(2 + i % 2)});
    ASSERT_TRUE(durable->ApplyUpdate("R", t, 1));
    ASSERT_TRUE(reference.ApplyUpdate("R", t, 1));
    if (i % 20 == 7) {
      // Fire and keep writing: the next appends race the snapshot I/O.
      ASSERT_TRUE(durable->Checkpoint().ok());
    }
  }
  ASSERT_TRUE(durable->WaitForCheckpoint().ok());
  EXPECT_GE(durable->durability_stats().checkpoints_taken, 2u);
  EXPECT_GT(durable->durability_stats().checkpoint_lsn, 0u);

  durable.reset();
  Status status;
  auto reopened =
      DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), reference.catalog()), "");
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

TEST(DurableCatalogTest, OpenOnAnEmptyDirIsAFreshCatalog) {
  TempDir dir;
  Status status;
  auto catalog = DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(catalog, nullptr) << status.message();
  std::string why;
  ASSERT_TRUE(catalog->RegisterQuery("Q", MustParse("Q(A) = R(A, B)"), Options(), &why)) << why;
  ASSERT_TRUE(catalog->TryLoad("R", {{Tuple({1, 2}), 1}}).ok());
  catalog->Preprocess();
  ASSERT_TRUE(catalog->ApplyUpdate("R", Tuple({4, 2}), 1));
  catalog.reset();

  auto reopened = DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_EQ(SortedResult(reopened->catalog(), "Q"),
            (std::vector<std::pair<Tuple, Mult>>{{Tuple({1}), 1}, {Tuple({4}), 1}}));
}

TEST(DurableCatalogTest, DdlSurvivesRestart) {
  DualRig rig;
  rig.Register("Q", "Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)", Options(0.5));
  rig.Load("R0", {{Tuple({1, 10}), 1}, {Tuple({2, 20}), 1}});
  rig.Load("R1", {{Tuple({1, 11}), 1}});
  rig.Preprocess();
  rig.Attach();
  // Late registration, a drop, and updates — all after the snapshot, so
  // recovery must replay the DDL records to rebuild the query set.
  rig.Register("P", "P(X) = R0(X, Y0)", Options(0.3));
  rig.Register("G", "G(Y1) = R1(X, Y1)", Options());
  rig.Update("R0", Tuple({3, 30}), 1);
  rig.Drop("G");
  rig.Update("R1", Tuple({3, 31}), 1);

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->catalog().QueryNames(), rig.reference->catalog().QueryNames());
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
  const MaintainedQuery* p = reopened->catalog().FindQuery("P");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->options().epsilon, 0.3);  // per-query options survive
}

class ShardedDurabilityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedDurabilityTest, ShardedCatalogSurvivesRestart) {
  const size_t k = GetParam();
  DualRig rig(k);
  rig.Register("Q", "Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)", Options(0.5));
  rig.Register("P", "P(X) = R0(X, Y0)", Options(0.5));
  for (Value x = 0; x < 6; ++x) {
    rig.Load("R0", {{Tuple({x, x + 100}), 1}});
    rig.Load("R1", {{Tuple({x, x + 200}), 1}});
  }
  rig.Preprocess();
  rig.Attach();
  for (Value x = 0; x < 12; ++x) {
    rig.Update("R0", Tuple({x % 7, x + 300}), 1);
    if (x == 5) {
      ASSERT_TRUE(rig.durable->Checkpoint().ok());  // checkpoint mid-stream
    }
    rig.Batch({Update{"R1", Tuple({x % 5, x + 400}), 1},
               Update{"R0", Tuple({x % 7, x + 300}), x % 3 == 0 ? -1 : 1}});
  }

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->catalog().num_shards(), k);  // `shards N` persists
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(K, ShardedDurabilityTest, ::testing::Values(1, 2, 3));

TEST(DurableCatalogTest, ReshardSurvivesRestart) {
  DualRig rig(1);
  rig.Register("Q", "Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)", Options());
  rig.Load("R0", {{Tuple({1, 10}), 1}, {Tuple({2, 20}), 1}});
  rig.Load("R1", {{Tuple({1, 11}), 1}, {Tuple({2, 21}), 1}});
  rig.Preprocess();
  rig.Attach();
  rig.Update("R0", Tuple({3, 30}), 1);
  ASSERT_TRUE(rig.durable->Reshard(2).ok());
  ASSERT_TRUE(rig.reference->Reshard(2).ok());
  rig.Update("R1", Tuple({3, 31}), 1);
  ASSERT_TRUE(rig.durable->Reshard(3).ok());
  ASSERT_TRUE(rig.reference->Reshard(3).ok());
  rig.Update("R0", Tuple({4, 40}), 1);

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->catalog().num_shards(), 3u);
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
}

TEST(DurableCatalogTest, CheckpointDuringIncrementalRebalanceIsSafe) {
  // Incremental rebalancing keeps a migration in flight across updates; a
  // checkpoint taken in that window snapshots only base data, and recovery
  // re-preprocesses — so the recovered state must still match a reference
  // that never checkpointed at all.
  DualRig rig;
  const auto options = Options(0.5, RebalanceMode::kIncremental, 0.25);
  rig.Register("Q", "Q(A, C) = R(A, B), S(B, C)", options);
  rig.Load("R", {{Tuple({0, 0}), 1}});
  rig.Load("S", {{Tuple({0, 0}), 1}});
  rig.Preprocess();
  rig.Attach();
  bool saw_in_progress = false;
  for (Value i = 1; i < 220; ++i) {
    rig.Update("R", Tuple({i % 9, i}), 1);
    rig.Update("S", Tuple({i, i % 6}), 1);
    const MaintainedQuery* q = rig.durable->catalog().FindQuery("Q");
    if (q->rebalance_in_progress()) {
      saw_in_progress = true;
      ASSERT_TRUE(rig.durable->Checkpoint().ok());
    }
  }
  EXPECT_TRUE(saw_in_progress) << "workload never left a migration in flight";

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

class FsyncPolicyTest : public ::testing::TestWithParam<FsyncPolicy> {};

TEST_P(FsyncPolicyTest, CleanCloseIsLosslessUnderEveryPolicy) {
  DualRig rig;
  rig.durable = std::make_unique<DurableCatalog>(ShardedCatalogOptions(),
                                                 Durability(GetParam()));
  rig.Register("Q", "Q(A) = R(A, B)", Options());
  rig.Load("R", {{Tuple({1, 2}), 1}});
  rig.Preprocess();
  rig.Attach();
  for (Value i = 0; i < 150; ++i) rig.Update("R", Tuple({i, i + 1}), 1);

  auto reopened = rig.Reopen();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");
}

INSTANTIATE_TEST_SUITE_P(Policies, FsyncPolicyTest,
                         ::testing::Values(FsyncPolicy::kOff, FsyncPolicy::kBatch,
                                           FsyncPolicy::kAlways));

// --- error paths ----------------------------------------------------------

TEST(DurableCatalogTest, StructuredErrorsInsteadOfAborts) {
  DurableCatalog catalog((ShardedCatalogOptions()));
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("Q", MustParse("Q(A) = R(A, B)"), Options(), &why)) << why;

  EXPECT_FALSE(catalog.TryLoadTuple("Nope", Tuple({1}), 1).ok());
  EXPECT_FALSE(catalog.TryLoadTuple("R", Tuple({1}), 1).ok());      // arity 1 != 2
  EXPECT_FALSE(catalog.TryLoadTuple("R", Tuple({1, 2}), 0).ok());   // non-positive mult
  EXPECT_FALSE(catalog.TryLoadTuple("R", Tuple({1, 2}), -3).ok());
  EXPECT_TRUE(catalog.TryLoadTuple("R", Tuple({1, 2}), 1).ok());
  catalog.Preprocess();
  EXPECT_FALSE(catalog.TryLoadTuple("R", Tuple({3, 4}), 1).ok());   // live catalog

  std::vector<std::pair<Tuple, Mult>> dump;
  EXPECT_FALSE(catalog.catalog().TryDumpRelation("Nope", &dump).ok());
  EXPECT_TRUE(catalog.catalog().TryDumpRelation("R", &dump).ok());
  EXPECT_EQ(dump.size(), 1u);

  EXPECT_FALSE(catalog.Reshard(0).ok());
  EXPECT_FALSE(catalog.Checkpoint().ok());  // not durable yet
}

TEST(DurableCatalogTest, AttachRefusesAForeignDirectory) {
  TempDir dir;
  {
    DurableCatalog first((ShardedCatalogOptions()), Durability());
    std::string why;
    ASSERT_TRUE(first.RegisterQuery("Q", MustParse("Q(A) = R(A, B)"), Options(), &why));
    first.Preprocess();
    ASSERT_TRUE(first.AttachDir(dir.path()).ok());
    EXPECT_FALSE(first.AttachDir(dir.path()).ok());  // already durable
  }
  DurableCatalog second((ShardedCatalogOptions()), Durability());
  const Status status = second.AttachDir(dir.path());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("open"), std::string::npos) << status.message();
}

TEST(DurableCatalogTest, TornWalTailIsTruncatedOnOpen) {
  DualRig rig;
  rig.Register("Q", "Q(A) = R(A, B)", Options());
  rig.Load("R", {{Tuple({1, 2}), 1}});
  rig.Preprocess();
  rig.Attach();
  rig.Update("R", Tuple({3, 4}), 1);
  rig.Update("R", Tuple({5, 6}), 1);
  const std::string wal_dir = rig.dir.path();
  rig.durable.reset();

  // Simulate a crash mid-append: garbage after the last durable record.
  std::vector<std::pair<uint64_t, std::string>> segments;
  ASSERT_TRUE(ListWalSegments(wal_dir, &segments).ok());
  ASSERT_FALSE(segments.empty());
  {
    std::ofstream f(wal_dir + "/" + segments.back().second, std::ios::binary | std::ios::app);
    f << "torn!torn!torn!";
  }

  Status status;
  auto reopened = DurableCatalog::Open(wal_dir, ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_TRUE(reopened->durability_stats().recovered_torn_tail);
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), rig.reference->catalog()), "");

  // And the repaired log reopens cleanly (no torn flag the second time).
  reopened.reset();
  auto again = DurableCatalog::Open(wal_dir, ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(again, nullptr) << status.message();
  EXPECT_FALSE(again->durability_stats().recovered_torn_tail);
  EXPECT_EQ(DiffLogicalState(again->catalog(), rig.reference->catalog()), "");
}

TEST(DurableCatalogTest, CorruptNewestSnapshotFallsBackToThePrevious) {
  DualRig rig;
  rig.Register("Q", "Q(A) = R(A, B)", Options());
  rig.Load("R", {{Tuple({1, 2}), 1}});
  rig.Preprocess();
  rig.Attach();
  rig.Update("R", Tuple({3, 4}), 1);
  ASSERT_TRUE(rig.durable->Checkpoint().ok());
  // Reference state at the first post-attach checkpoint.
  auto state_at_checkpoint = SortedResult(rig.reference->catalog(), "Q");
  rig.Update("R", Tuple({5, 6}), 1);
  ASSERT_TRUE(rig.durable->Checkpoint().ok());
  const std::string dir = rig.dir.path();
  rig.durable.reset();

  // Bit-rot the newest snapshot. Its WAL was already truncated, so recovery
  // falls back to the previous snapshot: consistent, possibly stale — the
  // documented best-effort disaster path, surfaced via replay stats.
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(ListSnapshots(dir, &lsns).ok());
  ASSERT_EQ(lsns.size(), 2u);
  const std::string newest = dir + "/" + SnapshotFileName(lsns.back());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(newest, &bytes).ok());
  bytes[bytes.size() / 3] ^= 0x10;
  ASSERT_TRUE(WriteFileDurable(newest, bytes).ok());

  Status status;
  auto reopened = DurableCatalog::Open(dir, ShardedCatalogOptions(), Durability(), &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_EQ(SortedResult(reopened->catalog(), "Q"), state_at_checkpoint);
}

}  // namespace
}  // namespace ivme
