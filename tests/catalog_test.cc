// Multi-query catalog tests: differential fuzz of a QueryCatalog /
// ShardedCatalog with Q registered queries against Q independent engines on
// randomly chunked mixed insert/delete streams, write-once cost accounting
// on the shared store, late-registration equivalence, drop-then-re-register
// behavior, and per-query invariants across major rebalances.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/core/catalog.h"
#include "src/core/engine.h"
#include "src/core/sharded_catalog.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

using testing::MustParse;

EngineOptions Dynamic(double eps) {
  EngineOptions options;
  options.epsilon = eps;
  options.mode = EvalMode::kDynamic;
  return options;
}

// Query pool over the shared relations R(arity 2), S(arity 2), T(arity 1):
// full/projection/semijoin/join/Boolean shapes plus a self-join (mirror
// occurrences). All hierarchical.
const char* kPlainPool[] = {
    "Q(A, B) = R(A, B)",
    "Q(A) = R(A, B)",
    "Q(B) = R(A, B), T(B)",
    "Q(A, C) = R(A, B), S(B, C)",
    "Q(B) = R(A, B), S(B, C)",
    "Q(B, C) = S(B, C), T(B)",
    "Q() = R(A, B)",
    "Q(A) = R(A, B), R(A, B2)",
};

// Subset whose members are all shardable with pairwise-consistent routing:
// every query's canonical root is the join variable held in R's column 1,
// S's column 0, and T's column 0.
const char* kShardablePool[] = {
    "Q(B) = R(A, B), T(B)",
    "Q(A, C) = R(A, B), S(B, C)",
    "Q(B) = R(A, B), S(B, C)",
    "Q(B, C) = S(B, C), T(B)",
};

size_t ArityOf(const std::string& relation) { return relation == "T" ? 1 : 2; }

Tuple RandomTuple(Rng& rng, const std::string& relation, Value domain) {
  Tuple t;
  for (size_t i = 0; i < ArityOf(relation); ++i) t.PushBack(rng.Range(0, domain));
  return t;
}

/// A valid mixed stream over {R, S, T}: deletes always target live tuples
/// (multiset semantics — a tuple inserted twice tolerates two deletes).
class StreamGen {
 public:
  explicit StreamGen(uint64_t seed) : rng_(seed) {}

  Update Next(Value domain) {
    const std::vector<std::string> names = {"R", "S", "T"};
    const size_t r = rng_.Below(names.size());
    auto& live = live_[names[r]];
    if (!live.empty() && rng_.Chance(0.45)) {
      const size_t pick = rng_.Below(live.size());
      Update u{names[r], live[pick], -1};
      live[pick] = live.back();
      live.pop_back();
      return u;
    }
    Tuple t = RandomTuple(rng_, names[r], domain);
    live.push_back(t);
    return Update{names[r], std::move(t), 1};
  }

  std::vector<std::pair<Tuple, Mult>> InitialLoad(const std::string& relation, size_t count,
                                                  Value domain) {
    std::vector<std::pair<Tuple, Mult>> out;
    for (size_t i = 0; i < count; ++i) {
      Tuple t = RandomTuple(rng_, relation, domain);
      live_[relation].push_back(t);
      out.emplace_back(std::move(t), 1);
    }
    return out;
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  std::map<std::string, std::vector<Tuple>> live_;
};

/// Q independent engines, one per registered query, fed the same stream
/// (each only the records addressing its own relations) — the oracle for
/// the shared-store catalogs.
class IndependentEngines {
 public:
  void Add(const std::string& name, const ConjunctiveQuery& q, EngineOptions options) {
    names_.push_back(name);
    engines_.push_back(std::make_unique<Engine>(q, options));
  }

  void Load(const std::string& relation, const std::vector<std::pair<Tuple, Mult>>& tuples) {
    for (auto& engine : engines_) {
      if (Uses(*engine, relation)) engine->Load(relation, tuples);
    }
  }

  void Preprocess() {
    for (auto& engine : engines_) engine->Preprocess();
  }

  void ApplyBatch(const UpdateBatch& batch) {
    for (auto& engine : engines_) {
      UpdateBatch mine;
      for (const Update& u : batch) {
        if (Uses(*engine, u.relation)) mine.push_back(u);
      }
      if (!mine.empty()) engine->ApplyBatch(mine);
    }
  }

  Engine& at(size_t i) { return *engines_[i]; }
  const std::string& name(size_t i) const { return names_[i]; }
  size_t size() const { return engines_.size(); }

 private:
  static bool Uses(const Engine& engine, const std::string& relation) {
    for (const auto& atom : engine.query().atoms()) {
      if (atom.relation == relation) return true;
    }
    return false;
  }

  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

std::string DiffResults(const QueryResult& expected, const QueryResult& actual) {
  std::string out;
  for (const auto& [tuple, mult] : expected) {
    auto it = actual.find(tuple);
    if (it == actual.end()) {
      out += "missing " + tuple.ToString() + "; ";
    } else if (it->second != mult) {
      out += "mult mismatch at " + tuple.ToString() + "; ";
    }
  }
  for (const auto& [tuple, mult] : actual) {
    (void)mult;
    if (expected.find(tuple) == expected.end()) out += "spurious " + tuple.ToString() + "; ";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Differential fuzz: catalog with Q ∈ {1, 2, 4} queries vs Q independent
// engines on a randomly chunked mixed stream, invariants checked per chunk.
// ---------------------------------------------------------------------------

class CatalogFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CatalogFuzzTest, MatchesIndependentEnginesOnChunkedStream) {
  StreamGen gen(0xCA7A0000ull + static_cast<uint64_t>(GetParam()));
  Rng& rng = gen.rng();
  const size_t num_queries = std::vector<size_t>{1, 2, 4}[rng.Below(3)];
  const Value domain = static_cast<Value>(3 + rng.Below(4));

  QueryCatalog catalog;
  IndependentEngines oracle;
  for (size_t i = 0; i < num_queries; ++i) {
    const std::string text = kPlainPool[rng.Below(std::size(kPlainPool))];
    const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
    const std::string name = "q" + std::to_string(i);
    const auto q = MustParse(text);
    catalog.RegisterQuery(name, q, Dynamic(eps));
    oracle.Add(name, q, Dynamic(eps));
  }

  for (const std::string relation : {"R", "S", "T"}) {
    const auto initial = gen.InitialLoad(relation, rng.Below(20), domain);
    if (catalog.store().Find(relation) != nullptr) catalog.Load(relation, initial);
    oracle.Load(relation, initial);
  }
  catalog.Preprocess();
  oracle.Preprocess();

  for (int chunk = 0; chunk < 10; ++chunk) {
    UpdateBatch batch;
    const size_t batch_size = 1 + rng.Below(40);
    for (size_t i = 0; i < batch_size; ++i) {
      Update u = gen.Next(domain);
      // Records addressing relations no registered query reads would trip
      // the catalog's unknown-relation check; keep the stream addressable.
      if (catalog.store().Find(u.relation) == nullptr) continue;
      batch.push_back(std::move(u));
    }
    if (rng.Chance(0.3) && batch.size() == 1) {
      // Exercise the single-update path too.
      ASSERT_TRUE(catalog.ApplyUpdate(batch[0].relation, batch[0].tuple, batch[0].mult));
    } else {
      const auto result = catalog.ApplyBatch(batch);
      ASSERT_EQ(result.rejected, 0u) << "chunk " << chunk;
    }
    oracle.ApplyBatch(batch);

    std::string error;
    ASSERT_TRUE(catalog.CheckInvariants(&error)) << error << " (chunk " << chunk << ")";
    for (size_t i = 0; i < oracle.size(); ++i) {
      const auto expected = oracle.at(i).EvaluateToMap();
      const auto actual = catalog.EvaluateToMap(oracle.name(i));
      ASSERT_EQ(DiffResults(expected, actual), "")
          << "query " << oracle.name(i) << " (" << oracle.at(i).query().ToString() << ") chunk "
          << chunk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogFuzzTest, ::testing::Range(0, 25));

class ShardedCatalogFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedCatalogFuzzTest, MatchesIndependentEnginesAcrossShardCounts) {
  StreamGen gen(0x5CA7A000ull + static_cast<uint64_t>(GetParam()));
  Rng& rng = gen.rng();
  const size_t num_queries = std::vector<size_t>{1, 2, 4}[rng.Below(3)];
  const size_t num_shards = std::vector<size_t>{1, 2, 3}[rng.Below(3)];
  const Value domain = static_cast<Value>(3 + rng.Below(4));

  ShardedCatalogOptions options;
  options.num_shards = num_shards;
  options.num_threads = 1 + rng.Below(3);
  ShardedCatalog catalog(options);
  IndependentEngines oracle;
  for (size_t i = 0; i < num_queries; ++i) {
    const std::string text = kShardablePool[rng.Below(std::size(kShardablePool))];
    const double eps = std::vector<double>{0.0, 0.5, 1.0}[rng.Below(3)];
    const std::string name = "q" + std::to_string(i);
    const auto q = MustParse(text);
    std::string why;
    ASSERT_TRUE(catalog.RegisterQuery(name, q, Dynamic(eps), &why)) << why;
    oracle.Add(name, q, Dynamic(eps));
  }

  for (const std::string relation : {"R", "S", "T"}) {
    // Relations no registered query reads are absent from the shard stores
    // (and unroutable); skip before touching the live-set bookkeeping.
    if (catalog.shard(0).store().Find(relation) == nullptr) continue;
    const auto initial = gen.InitialLoad(relation, rng.Below(20), domain);
    catalog.Load(relation, initial);
    oracle.Load(relation, initial);
  }
  catalog.Preprocess();
  oracle.Preprocess();

  for (int chunk = 0; chunk < 8; ++chunk) {
    UpdateBatch batch;
    const size_t batch_size = 1 + rng.Below(40);
    for (size_t i = 0; i < batch_size; ++i) {
      Update u = gen.Next(domain);
      if (catalog.shard(0).store().Find(u.relation) == nullptr) continue;
      batch.push_back(std::move(u));
    }
    const auto result = catalog.ApplyBatch(batch);
    ASSERT_EQ(result.rejected, 0u) << "chunk " << chunk;
    oracle.ApplyBatch(batch);

    std::string error;
    ASSERT_TRUE(catalog.CheckInvariants(&error)) << error << " (chunk " << chunk << ")";
    for (size_t i = 0; i < oracle.size(); ++i) {
      const auto expected = oracle.at(i).EvaluateToMap();
      const auto actual = catalog.EvaluateToMap(oracle.name(i));
      ASSERT_EQ(DiffResults(expected, actual), "")
          << "query " << oracle.name(i) << " shards=" << num_shards << " chunk " << chunk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedCatalogFuzzTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Write-once cost accounting on the shared store.
// ---------------------------------------------------------------------------

TEST(CatalogCostTest, BatchBaseWritesAreIndependentOfQueryCount) {
  // Four queries, all over R: the catalog writes each net entry once; four
  // independent engines write it four times.
  const std::vector<std::string> pool = {
      "Q(A, B) = R(A, B)", "Q(A) = R(A, B)", "Q(B) = R(A, B)", "Q() = R(A, B)"};

  QueryCatalog catalog;
  IndependentEngines oracle;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto q = MustParse(pool[i]);
    catalog.RegisterQuery("q" + std::to_string(i), q, Dynamic(0.5));
    oracle.Add("q" + std::to_string(i), q, Dynamic(0.5));
  }
  Rng rng(7);
  std::vector<std::pair<Tuple, Mult>> initial;
  for (int i = 0; i < 50; ++i) initial.emplace_back(Tuple{rng.Range(0, 20), rng.Range(0, 20)}, 1);
  catalog.Load("R", initial);
  oracle.Load("R", initial);
  catalog.Preprocess();
  oracle.Preprocess();

  UpdateBatch batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(Update{"R", Tuple{rng.Range(0, 20), rng.Range(0, 20)}, 1});
  }
  batch.push_back(Update{"R", Tuple{500, 500}, 1});
  batch.push_back(Update{"R", Tuple{500, 500}, -1});  // cancels: never written

  ResetCounters();
  const auto result = catalog.ApplyBatch(batch);
  const uint64_t catalog_writes = AggregateCounters().base_writes;
  EXPECT_EQ(catalog_writes, result.applied);  // exactly once per net entry

  ResetCounters();
  oracle.ApplyBatch(batch);
  const uint64_t oracle_writes = AggregateCounters().base_writes;
  EXPECT_EQ(oracle_writes, pool.size() * result.applied);  // once per engine

  // Single-update path: one write regardless of the four readers.
  ResetCounters();
  ASSERT_TRUE(catalog.ApplyUpdate("R", Tuple{1, 2}, 1));
  EXPECT_EQ(AggregateCounters().base_writes, 1u);
}

TEST(CatalogCostTest, ShardedCatalogWritesEachNetEntryOnce) {
  ShardedCatalogOptions options;
  options.num_shards = 3;
  options.num_threads = 2;
  ShardedCatalog catalog(options);
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Dynamic(0.5), &why))
      << why;
  ASSERT_TRUE(catalog.RegisterQuery("semi", MustParse("Q(B) = R(A, B), T(B)"), Dynamic(0.5),
                                    &why))
      << why;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    catalog.LoadTuple("R", Tuple{rng.Range(0, 30), rng.Range(0, 10)}, 1);
    catalog.LoadTuple("S", Tuple{rng.Range(0, 10), rng.Range(0, 30)}, 1);
    catalog.LoadTuple("T", Tuple{rng.Range(0, 10)}, 1);
  }
  catalog.Preprocess();

  UpdateBatch batch;
  for (int i = 0; i < 48; ++i) {
    batch.push_back(Update{"R", Tuple{rng.Range(0, 30), rng.Range(0, 10)}, 1});
    if (i % 3 == 0) batch.push_back(Update{"T", Tuple{rng.Range(0, 10)}, 1});
  }
  ResetCounters();
  const auto result = catalog.ApplyBatch(batch);
  // Every surviving net entry lands in exactly one shard's store.
  EXPECT_EQ(AggregateCounters().base_writes, result.applied);
}

// ---------------------------------------------------------------------------
// Late registration, drop, re-register.
// ---------------------------------------------------------------------------

TEST(CatalogLifecycleTest, LateRegistrationMatchesFreshEngine) {
  QueryCatalog catalog;
  catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"), Dynamic(0.5));
  Rng rng(23);
  for (int i = 0; i < 40; ++i) {
    catalog.LoadTuple("R", Tuple{rng.Range(0, 15), rng.Range(0, 6)}, 1);
    catalog.LoadTuple("S", Tuple{rng.Range(0, 6), rng.Range(0, 15)}, 1);
  }
  catalog.Preprocess();
  for (int i = 0; i < 30; ++i) {
    catalog.ApplyUpdate("R", Tuple{rng.Range(0, 15), rng.Range(0, 6)}, 1);
  }

  // Register a second query against the live store; it must see everything
  // ingested so far, exactly like a fresh engine over a dump.
  MaintainedQuery* late =
      catalog.RegisterQuery("proj", MustParse("Q(B) = R(A, B), S(B, C)"), Dynamic(0.5));
  ASSERT_TRUE(late->preprocessed());

  Engine fresh(MustParse("Q(B) = R(A, B), S(B, C)"), Dynamic(0.5));
  fresh.Load("R", catalog.DumpRelation("R"));
  fresh.Load("S", catalog.DumpRelation("S"));
  fresh.Preprocess();
  EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap("proj")), "");

  // And it keeps tracking subsequent updates.
  UpdateBatch more;
  for (int i = 0; i < 25; ++i) {
    more.push_back(Update{"S", Tuple{rng.Range(0, 6), rng.Range(0, 15)}, 1});
  }
  catalog.ApplyBatch(more);
  fresh.ApplyBatch(more);
  EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap("proj")), "");
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

TEST(CatalogLifecycleTest, DropThenReRegister) {
  QueryCatalog catalog;
  catalog.RegisterQuery("full", MustParse("Q(A, B) = R(A, B)"), Dynamic(0.5));
  catalog.RegisterQuery("proj", MustParse("Q(A) = R(A, B)"), Dynamic(0.0));
  EXPECT_EQ(catalog.store().RefCount("R"), 2u);

  Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    catalog.LoadTuple("R", Tuple{rng.Range(0, 10), rng.Range(0, 10)}, 1);
  }
  catalog.Preprocess();

  ASSERT_TRUE(catalog.DropQuery("full"));
  EXPECT_FALSE(catalog.DropQuery("full"));  // already gone
  EXPECT_EQ(catalog.FindQuery("full"), nullptr);
  EXPECT_EQ(catalog.store().RefCount("R"), 1u);

  // The store keeps serving the remaining query through more updates.
  for (int i = 0; i < 40; ++i) {
    catalog.ApplyUpdate("R", Tuple{rng.Range(0, 10), rng.Range(0, 10)}, 1);
  }

  // Re-register under the same name: preprocesses from the live store and
  // matches a fresh engine over the dump.
  catalog.RegisterQuery("full", MustParse("Q(A, B) = R(A, B)"), Dynamic(1.0));
  EXPECT_EQ(catalog.store().RefCount("R"), 2u);
  Engine fresh(MustParse("Q(A, B) = R(A, B)"), Dynamic(1.0));
  fresh.Load("R", catalog.DumpRelation("R"));
  fresh.Preprocess();
  EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap("full")), "");
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

TEST(CatalogLifecycleTest, ShardedLateRegisterAndDrop) {
  ShardedCatalogOptions options;
  options.num_shards = 2;
  ShardedCatalog catalog(options);
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Dynamic(0.5), &why))
      << why;
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    catalog.LoadTuple("R", Tuple{rng.Range(0, 12), rng.Range(0, 5)}, 1);
    catalog.LoadTuple("S", Tuple{rng.Range(0, 5), rng.Range(0, 12)}, 1);
  }
  catalog.Preprocess();
  for (int i = 0; i < 20; ++i) {
    catalog.ApplyUpdate("R", Tuple{rng.Range(0, 12), rng.Range(0, 5)}, 1);
  }

  ASSERT_TRUE(
      catalog.RegisterQuery("proj", MustParse("Q(B) = R(A, B), S(B, C)"), Dynamic(0.5), &why))
      << why;
  Engine fresh(MustParse("Q(B) = R(A, B), S(B, C)"), Dynamic(0.5));
  fresh.Load("R", catalog.DumpRelation("R"));
  fresh.Load("S", catalog.DumpRelation("S"));
  fresh.Preprocess();
  EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap("proj")), "");

  ASSERT_TRUE(catalog.DropQuery("join"));
  UpdateBatch more;
  for (int i = 0; i < 30; ++i) {
    more.push_back(Update{"S", Tuple{rng.Range(0, 5), rng.Range(0, 12)}, 1});
  }
  catalog.ApplyBatch(more);
  fresh.ApplyBatch(more);
  EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap("proj")), "");
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

TEST(ShardedCatalogGatingTest, RejectsUnshardableAndConflictingQueries) {
  ShardedCatalogOptions options;
  options.num_shards = 2;
  ShardedCatalog catalog(options);
  std::string why;

  // Disconnected: rejected at K > 1.
  EXPECT_FALSE(catalog.RegisterQuery("cart", MustParse("Q(A, B) = R(A, C), S2(B)"),
                                     Dynamic(0.5), &why));
  EXPECT_NE(why.find("disconnected"), std::string::npos) << why;

  // Establish routing: root in S's column 0 and T's column 0.
  ASSERT_TRUE(
      catalog.RegisterQuery("semi", MustParse("Q(X) = S(X, Y), T(X)"), Dynamic(0.5), &why))
      << why;

  // A query reading its root from S's column 1 conflicts with the stored
  // sharding and must be rejected without side effects.
  EXPECT_FALSE(
      catalog.RegisterQuery("conflict", MustParse("Q(Y) = S(X, Y), U(Y)"), Dynamic(0.5), &why));
  EXPECT_NE(why.find("routing conflict"), std::string::npos) << why;
  EXPECT_EQ(catalog.FindQuery("conflict"), nullptr);
  EXPECT_EQ(catalog.num_queries(), 1u);

  // Same root column is accepted.
  ASSERT_TRUE(
      catalog.RegisterQuery("other", MustParse("Q(X, Y) = S(X, Y)"), Dynamic(0.5), &why))
      << why;

  // An arity conflict with a live relation is rejected (returns false, no
  // side effects) rather than tripping the store's hard error mid-commit.
  EXPECT_FALSE(
      catalog.RegisterQuery("arity", MustParse("Q(X) = S(X), T(X)"), Dynamic(0.5), &why));
  EXPECT_NE(why.find("arity"), std::string::npos) << why;
  EXPECT_EQ(catalog.FindQuery("arity"), nullptr);
}

// ---------------------------------------------------------------------------
// Major rebalances under multi-query maintenance.
// ---------------------------------------------------------------------------

TEST(CatalogRebalanceTest, PerQueryInvariantsAcrossGrowthAndShrink) {
  QueryCatalog catalog;
  catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"), Dynamic(0.5));
  catalog.RegisterQuery("proj", MustParse("Q(A) = R(A, B)"), Dynamic(1.0));
  catalog.LoadTuple("R", Tuple{0, 0}, 1);
  catalog.LoadTuple("S", Tuple{0, 0}, 1);
  catalog.Preprocess();

  // Growth: force repeated M doublings in every query.
  Rng rng(57);
  std::vector<Tuple> live_r;
  UpdateBatch batch;
  for (int i = 0; i < 300; ++i) {
    Tuple t{rng.Range(0, 40), rng.Range(0, 8)};
    live_r.push_back(t);
    batch.push_back(Update{"R", std::move(t), 1});
  }
  catalog.ApplyBatch(batch);
  std::string error;
  ASSERT_TRUE(catalog.CheckInvariants(&error)) << error;
  EXPECT_GE(catalog.FindQuery("join")->GetStats().major_rebalances, 1u);
  EXPECT_GE(catalog.FindQuery("proj")->GetStats().major_rebalances, 1u);

  // Shrink: delete almost everything, forcing halvings.
  batch.clear();
  for (size_t i = 0; i + 8 < live_r.size(); ++i) {
    batch.push_back(Update{"R", live_r[i], -1});
  }
  const auto result = catalog.ApplyBatch(batch);
  EXPECT_EQ(result.rejected, 0u);
  ASSERT_TRUE(catalog.CheckInvariants(&error)) << error;
  EXPECT_GE(catalog.FindQuery("join")->GetStats().major_rebalances, 2u);

  // Both queries still agree with fresh engines over the dump.
  for (const char* name : {"join", "proj"}) {
    const MaintainedQuery* query = catalog.FindQuery(name);
    Engine fresh(query->query(), Dynamic(query->epsilon()));
    fresh.Load("R", catalog.DumpRelation("R"));
    if (name == std::string("join")) fresh.Load("S", catalog.DumpRelation("S"));
    fresh.Preprocess();
    EXPECT_EQ(DiffResults(fresh.EvaluateToMap(), catalog.EvaluateToMap(name)), "") << name;
  }
}

}  // namespace
}  // namespace ivme
