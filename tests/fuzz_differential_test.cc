// Differential fuzzing: random hierarchical queries × random databases ×
// random update streams, engine vs brute force, with invariant checks.
// This covers query shapes beyond the hand-picked catalog (deep chains,
// atoms at inner path positions, multi-branch bound nesting, multiple
// components, Boolean heads).
#include <gtest/gtest.h>

#include "src/query/classify.h"
#include "src/query/edge_cover.h"
#include "src/query/hypergraph.h"
#include "src/query/width.h"
#include "tests/support/mirror.h"
#include "tests/support/random_queries.h"

namespace ivme {
namespace {

using testing::MirroredEngine;
using testing::RandomHierarchicalQuery;
using testing::RandomQueryOptions;

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomQueryRandomStream) {
  Rng rng(0xF0220000ull + static_cast<uint64_t>(GetParam()));
  const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
  ASSERT_TRUE(IsHierarchical(q)) << q.ToString();

  const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  MirroredEngine m(q.ToString(), opts);

  // Initial load with small domains (dense joins, frequent heavy keys).
  const Value domain = static_cast<Value>(2 + rng.Below(4));
  auto arity_of = [&](const std::string& name) {
    for (const auto& atom : m.query().atoms()) {
      if (atom.relation == name) return atom.schema.size();
    }
    return size_t{0};
  };
  const auto names = m.query().RelationNames();
  for (const auto& name : names) {
    const int count = static_cast<int>(rng.Below(25));
    for (int i = 0; i < count; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity_of(name); ++j) t.PushBack(rng.Range(0, domain));
      m.Load(name, t, 1);
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " (preprocess)";

  for (int step = 0; step < 150; ++step) {
    const auto& name = names[rng.Below(names.size())];
    Tuple t;
    for (size_t j = 0; j < arity_of(name); ++j) t.PushBack(rng.Range(0, domain));
    m.Update(name, t, rng.Chance(0.4) ? -1 : 1);
    if (step % 50 == 49) {
      ASSERT_EQ(m.FullCheck(), "")
          << q.ToString() << " eps=" << eps << " step=" << step;
    }
  }
  EXPECT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 40));

class FuzzBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzBatchTest, RandomQueryRandomlyChunkedStream) {
  // Batch ingestion differential fuzz: a valid stream (every delete targets
  // a live tuple, so no record is ever rejected) is cut into random-size
  // chunks and applied through ApplyBatch. Any chunking must reach the same
  // state as the single-tuple sequence; each chunk is checked against brute
  // force and the internal invariants.
  Rng rng(0xBA7C0000ull + static_cast<uint64_t>(GetParam()));
  const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
  ASSERT_TRUE(IsHierarchical(q)) << q.ToString();

  const double eps = std::vector<double>{0.0, 0.3, 0.5, 1.0}[rng.Below(4)];
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  MirroredEngine m(q.ToString(), opts);

  const Value domain = static_cast<Value>(2 + rng.Below(4));
  auto arity_of = [&](const std::string& name) {
    for (const auto& atom : m.query().atoms()) {
      if (atom.relation == name) return atom.schema.size();
    }
    return size_t{0};
  };
  const auto names = m.query().RelationNames();
  std::vector<std::vector<Tuple>> live(names.size());
  for (size_t r = 0; r < names.size(); ++r) {
    const int count = static_cast<int>(rng.Below(25));
    for (int i = 0; i < count; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity_of(names[r]); ++j) t.PushBack(rng.Range(0, domain));
      m.Load(names[r], t, 1);
      live[r].push_back(std::move(t));
    }
  }
  m.Preprocess();
  ASSERT_EQ(m.FullCheck(), "") << q.ToString() << " eps=" << eps << " (preprocess)";

  // Duplicates in `live` are intended: a tuple loaded twice has multiplicity
  // 2 and tolerates two deletes, so deletes drawn from the multiset stay
  // valid under net-delta consolidation too.
  for (int step = 0; step < 12; ++step) {
    UpdateBatch batch;
    const size_t batch_size = 1 + rng.Below(40);  // random chunk sizes
    while (batch.size() < batch_size) {
      const size_t r = rng.Below(names.size());
      if (!live[r].empty() && rng.Chance(0.45)) {
        const size_t pick = rng.Below(live[r].size());
        batch.push_back(Update{names[r], live[r][pick], -1});
        live[r][pick] = live[r].back();
        live[r].pop_back();
      } else {
        Tuple t;
        for (size_t j = 0; j < arity_of(names[r]); ++j) t.PushBack(rng.Range(0, domain));
        live[r].push_back(t);
        batch.push_back(Update{names[r], std::move(t), 1});
      }
    }
    const auto result = m.UpdateBatch(batch);
    ASSERT_EQ(result.rejected, 0u)
        << q.ToString() << " eps=" << eps << " step=" << step;
    ASSERT_EQ(m.FullCheck(), "")
        << q.ToString() << " eps=" << eps << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBatchTest, ::testing::Range(0, 30));

TEST(FuzzAnalysisTest, WidthsConsistentOnRandomQueries) {
  // Structural properties on a larger sample (no data needed):
  // δ = DeltaRank (Prop. 8), δ ∈ {w−1, w} (Prop. 17), free-connex ⇒ w=1
  // (Prop. 3), q-hierarchical ⇔ δ0 (Prop. 6), and Lemma 30 on the width
  // witness sets.
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 300; ++trial) {
    const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
    ASSERT_TRUE(IsHierarchical(q)) << q.ToString();
    const int w = StaticWidth(q);
    const int d = DynamicWidth(q);
    EXPECT_EQ(d, DeltaRank(q)) << q.ToString();
    EXPECT_TRUE(d == w || d == w - 1) << q.ToString() << " w=" << w << " d=" << d;
    EXPECT_EQ(IsQHierarchical(q), d == 0) << q.ToString();
    if (IsFreeConnex(q)) {
      EXPECT_EQ(w, 1) << q.ToString();
      EXPECT_LE(d, 1) << q.ToString();
    }
  }
}

TEST(FuzzAnalysisTest, CanonicalAndFreeTopOrdersValidOnRandomQueries) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 300; ++trial) {
    const auto q = RandomHierarchicalQuery(rng, RandomQueryOptions{});
    const auto canonical = VariableOrder::Canonical(q);
    EXPECT_TRUE(canonical.IsValidFor(q)) << q.ToString();
    EXPECT_TRUE(canonical.IsCanonicalFor(q)) << q.ToString();
    const auto ft = VariableOrder::FreeTopOfCanonical(q);
    EXPECT_TRUE(ft.IsValidFor(q)) << q.ToString();
    EXPECT_TRUE(ft.IsFreeTop(q)) << q.ToString();
  }
}

}  // namespace
}  // namespace ivme
