// Crash-point recovery fuzzing: random workloads (updates, batches, DDL,
// reshards, checkpoints) run against a durable catalog with one randomly
// armed crash point, across fsync policies and shard counts. After the
// injected crash the on-disk state is exactly what a real kill would leave
// (later file writes are suppressed); Open() must then recover a state
// byte-identical — sorted relation dumps and sorted result enumerations —
// to a never-crashed reference that contains precisely the acknowledged-
// durable prefix of the workload:
//   - wal:before_append / wal:append_torn fire before the record is fully
//     on disk, so the in-flight operation is NOT in the reference;
//   - wal:before_sync / catalog:after_wal_append / catalog:after_apply fire
//     after the append, so the in-flight operation IS in the reference
//     (this process does not lose page-cache contents, so an unsynced but
//     written record survives an in-process "crash");
//   - checkpoint:* points interrupt only snapshot/cleanup file work, which
//     never changes the logical state.
// 40 seeds × 6 scenarios = 240 randomized (workload, crash-point) pairs per
// run. IVME_SEED offsets every seed for reproduction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/durable_catalog.h"
#include "tests/support/catalog.h"
#include "tests/support/durability.h"
#include "tests/support/seed.h"

namespace ivme {
namespace {

using testing::DiffLogicalState;
using testing::MustParse;
using testing::TempDir;

const char* const kCrashPoints[] = {
    "wal:before_append",
    "wal:append_torn",
    "wal:before_sync",
    "catalog:after_wal_append",
    "catalog:after_apply",
    "checkpoint:before_tmp_write",
    "checkpoint:tmp_torn",
    "checkpoint:before_rename",
    "checkpoint:after_rename",
    "checkpoint:mid_retain",
    "checkpoint:before_wal_delete",
    "checkpoint:mid_wal_delete",
};
constexpr size_t kNumCrashPoints = sizeof(kCrashPoints) / sizeof(kCrashPoints[0]);

/// Whether the operation in flight when `point` fired reached durable
/// storage (and so must be part of the expected recovered state).
bool InFlightOpIsDurable(const std::string& point) {
  return point == "wal:before_sync" || point == "catalog:after_wal_append" ||
         point == "catalog:after_apply";
}

uint64_t SeedBase() { return testing::SeedBase(0xC4A50000ull); }

void RunScenario(uint64_t seed) {
  Rng rng(seed);
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());

  const size_t num_shards = 1 + rng.Below(3);
  const FsyncPolicy policy =
      std::vector<FsyncPolicy>{FsyncPolicy::kOff, FsyncPolicy::kBatch,
                               FsyncPolicy::kAlways}[rng.Below(3)];
  FaultInjector injector;
  FaultInjector reference_injector;  // never armed
  DurabilityOptions durability;
  durability.fsync = policy;
  durability.fsync_interval = 1 + rng.Below(8);
  durability.retain_snapshots = 1 + rng.Below(3);
  durability.background_checkpoint = false;  // crash points fire in-order
  durability.injector = &injector;
  DurabilityOptions reference_options;
  reference_options.injector = &reference_injector;
  ShardedCatalogOptions catalog_options;
  catalog_options.num_shards = num_shards;

  auto durable = std::make_unique<DurableCatalog>(catalog_options, durability);
  DurableCatalog reference(catalog_options, reference_options);

  // Setup (unarmed): the star family roots every relation at column 0, so
  // any query subset routes consistently at any K.
  EngineOptions options;
  options.epsilon = std::vector<double>{0.0, 0.5, 1.0}[rng.Below(3)];
  options.mode = EvalMode::kDynamic;
  options.rebalance_mode =
      rng.Chance(0.5) ? RebalanceMode::kIncremental : RebalanceMode::kAmortized;
  std::string why;
  const auto q = MustParse("Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)");
  const auto p = MustParse("P(X) = R0(X, Y0)");
  ASSERT_TRUE(durable->RegisterQuery("Q", q, options, &why)) << why;
  ASSERT_TRUE(reference.RegisterQuery("Q", q, options, &why)) << why;
  ASSERT_TRUE(durable->RegisterQuery("P", p, options, &why)) << why;
  ASSERT_TRUE(reference.RegisterQuery("P", p, options, &why)) << why;
  const Value domain = 2 + static_cast<Value>(rng.Below(5));

  // String-keyed values ride the whole crash matrix: a pool interned into
  // both catalogs before the injector arms (identical dense ids — Intern is
  // order-deterministic), drawn by the workload alongside raw ints for both
  // the routing root and the payload. AttachDir below snapshots the pool and
  // advances the dictionary sync watermark, so no kDictionary WAL record is
  // in flight inside the armed window.
  std::vector<Value> pool;
  for (int i = 0; i < 6; ++i) {
    const std::string s = "key" + std::to_string(i);
    const Value v = durable->catalog().dictionary()->Intern(s);
    ASSERT_EQ(v, reference.catalog().dictionary()->Intern(s));
    pool.push_back(v);
  }
  auto root_value = [&]() -> Value {
    if (rng.Chance(0.3)) return pool[rng.Below(pool.size())];
    return static_cast<Value>(rng.Below(static_cast<uint64_t>(domain)));
  };
  auto payload_value = [&]() -> Value {
    if (rng.Chance(0.3)) return pool[rng.Below(pool.size())];
    return static_cast<Value>(rng.Below(30));
  };

  for (int i = static_cast<int>(rng.Below(20)); i > 0; --i) {
    const std::string rel = rng.Chance(0.5) ? "R0" : "R1";
    const Tuple t({root_value(), payload_value()});
    ASSERT_TRUE(durable->TryLoadTuple(rel, t, 1).ok());
    ASSERT_TRUE(reference.TryLoadTuple(rel, t, 1).ok());
  }
  durable->Preprocess();
  reference.Preprocess();
  ASSERT_TRUE(durable->AttachDir(dir.path()).ok());

  // Arm one crash point; hits count from here, so the workload below is
  // the crash surface.
  const std::string point = kCrashPoints[rng.Below(kNumCrashPoints)];
  const bool checkpoint_point = point.rfind("checkpoint:", 0) == 0;
  const uint64_t hit = 1 + rng.Below(checkpoint_point ? 3 : 25);
  injector.Reset();
  injector.Arm(point, hit);

  // Workload: every acknowledged-durable operation is mirrored into the
  // reference; the op in flight at the crash is mirrored only when the
  // fired point lies past the WAL append.
  bool p2_registered = false;
  const auto p2 = MustParse("P2(Y0) = R0(X, Y0)");
  for (int step = 0; step < 80 && !injector.crashed(); ++step) {
    const uint64_t roll = rng.Below(100);
    auto mirror_if_durable = [&](auto&& apply_to_reference) {
      if (!injector.crashed() || InFlightOpIsDurable(injector.crash_point())) {
        apply_to_reference();
      }
    };
    if (roll < 8) {
      (void)durable->Checkpoint();  // no logical effect, never mirrored
    } else if (roll < 11) {
      const size_t new_k = 1 + rng.Below(3);
      (void)durable->Reshard(new_k);
      mirror_if_durable([&] { (void)reference.Reshard(new_k); });
    } else if (roll < 14) {
      if (p2_registered) {
        (void)durable->DropQuery("P2");
        mirror_if_durable([&] { reference.DropQuery("P2"); });
      } else {
        (void)durable->RegisterQuery("P2", p2, options, &why);
        mirror_if_durable([&] { reference.RegisterQuery("P2", p2, options, &why); });
      }
      if (!injector.crashed() || InFlightOpIsDurable(injector.crash_point())) {
        p2_registered = !p2_registered;
      }
    } else if (roll < 26) {
      UpdateBatch batch;
      const size_t size = 1 + rng.Below(10);
      for (size_t i = 0; i < size; ++i) {
        batch.push_back(Update{rng.Chance(0.5) ? "R0" : "R1",
                               Tuple({root_value(), payload_value()}),
                               rng.Chance(0.35) ? -1 : 1});
      }
      (void)durable->ApplyBatch(batch);
      mirror_if_durable([&] { reference.ApplyBatch(batch); });
    } else {
      const std::string rel = rng.Chance(0.5) ? "R0" : "R1";
      const Tuple t({root_value(), payload_value()});
      const Mult mult = rng.Chance(0.35) ? -1 : 1;
      (void)durable->ApplyUpdate(rel, t, mult);
      mirror_if_durable([&] { reference.ApplyUpdate(rel, t, mult); });
    }
  }

  const bool crashed = injector.crashed();
  const std::string fired = injector.crash_point();
  const size_t reference_shards = reference.catalog().num_shards();
  durable.reset();  // "the process dies" — suppressed writes stay suppressed

  FaultInjector recovery_injector;
  DurabilityOptions recovery_options = durability;
  recovery_options.injector = &recovery_injector;
  Status status;
  auto recovered =
      DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), recovery_options, &status);
  ASSERT_NE(recovered, nullptr) << "seed=" << seed << " point=" << fired << ": "
                                << status.message();

  EXPECT_EQ(DiffLogicalState(recovered->catalog(), reference.catalog()), "")
      << "seed=" << seed << " crashed=" << crashed << " point=" << fired
      << " fsync=" << FsyncPolicyName(policy) << " K=" << num_shards;
  std::string error;
  EXPECT_TRUE(recovered->catalog().CheckInvariants(&error))
      << "seed=" << seed << " point=" << fired << ": " << error;
  // The snapshot-carried dictionary must resolve every pool id to its
  // original string — the dumped tuples above compare by raw tagged Value,
  // which is only meaningful if the id assignment survived verbatim.
  for (size_t i = 0; i < pool.size(); ++i) {
    const std::string* s = recovered->catalog().dictionary()->Lookup(pool[i]);
    ASSERT_NE(s, nullptr) << "seed=" << seed << " point=" << fired
                          << ": pool id " << i << " lost in recovery";
    EXPECT_EQ(*s, "key" + std::to_string(i)) << "seed=" << seed;
  }
  if (crashed && fired == "wal:append_torn") {
    EXPECT_TRUE(recovered->durability_stats().recovered_torn_tail)
        << "seed=" << seed << ": a torn append must be detected as a torn tail";
  }
  if (!crashed) {
    EXPECT_EQ(recovered->catalog().num_shards(), reference_shards) << "seed=" << seed;
  }

  // The recovered catalog keeps serving: a few more updates + one reopen.
  // Each tail update interns a FRESH string, so its kDictionary WAL delta
  // must ride ahead of the batch record and replay through the reopen.
  // Both dictionaries hold exactly the pool here (nothing interned inside
  // the armed window), so fresh ids stay aligned.
  if (recovered->catalog().num_queries() > 0 && recovered->catalog().shard(0).preprocessed()) {
    for (int i = 0; i < 5; ++i) {
      const std::string fresh = "tail" + std::to_string(i);
      const Value tagged = recovered->catalog().dictionary()->Intern(fresh);
      ASSERT_EQ(tagged, reference.catalog().dictionary()->Intern(fresh))
          << "seed=" << seed << ": post-recovery intern order diverged";
      const Tuple t({root_value(), tagged});
      (void)recovered->ApplyUpdate("R0", t, 1);
      (void)reference.ApplyUpdate("R0", t, 1);
    }
    recovered.reset();
    auto reopened =
        DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), recovery_options, &status);
    ASSERT_NE(reopened, nullptr) << "seed=" << seed << ": " << status.message();
    EXPECT_EQ(DiffLogicalState(reopened->catalog(), reference.catalog()), "")
        << "seed=" << seed << " point=" << fired << " (post-recovery tail)";
  }
}

class RecoveryFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryFuzzTest, CrashAnywhereRecoverEverywhere) {
  // 6 scenarios per seed: each draws its own workload, fsync policy, shard
  // count, crash point, and hit number.
  for (uint64_t scenario = 0; scenario < 6; ++scenario) {
    SCOPED_TRACE("scenario " + std::to_string(scenario));
    RunScenario(SeedBase() + 1000 * static_cast<uint64_t>(GetParam()) + scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace ivme
