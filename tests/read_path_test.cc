// Read-path tests: parallel snapshot enumeration and the quiescent fast
// lanes (ARCHITECTURE.md §11).
//
//   - Differential: DrainMode::kParallel must produce the byte-identical
//     row stream of the serial drain — same tuples, same multiplicities,
//     same order — across K ∈ {1, 2, 4} shards, for a free-root query
//     (disjoint concatenation) and a bound-root query (multiplicity-summing
//     merge), via both Next() and FillBatch(), live and at a pinned epoch.
//   - Lane resolution: a snapshot pinned at a quiescent published epoch
//     takes the kFastPin lane, a pin held below the published epoch forces
//     kVersioned on later sessions, and both lanes return exactly the same
//     results (the read counters prove which lane ran).
//   - Flattening: version chains built up under a stalled pin converge back
//     to single-version entries once the pin drops and the retire log's
//     flatten thunks run.
//   - Serving flip torture (run under TSan): readers TryAcquireSnapshot in
//     a loop while the writer flips DisableServing/EnableServing between
//     batches; refused pins retry, granted pins must see exactly the batch
//     boundary they pinned.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/core/catalog.h"
#include "src/core/sharded_catalog.h"
#include "tests/support/catalog.h"
#include "tests/support/seed.h"

namespace ivme {
namespace {

using testing::MustParse;

EngineOptions Options() {
  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  return options;
}

using Rows = std::vector<std::pair<Tuple, Mult>>;

Rows DrainNext(MergedEnumerator& it) {
  Rows rows;
  Tuple t;
  Mult m = 0;
  while (it.Next(&t, &m)) rows.emplace_back(t, m);
  return rows;
}

Rows DrainFill(MergedEnumerator& it, size_t chunk) {
  Rows rows;
  RowBuffer batch;
  for (;;) {
    batch.Clear();
    const size_t n = it.FillBatch(&batch, chunk);
    for (size_t i = 0; i < n; ++i) rows.emplace_back(batch.tuple(i), batch.mult(i));
    if (n < chunk) break;
  }
  return rows;
}

/// Loads the same random R/S data into `catalog` and `reference`.
void LoadRandom(ShardedCatalog* catalog, QueryCatalog* reference, uint64_t seed,
                size_t tuples, Value domain) {
  Rng rng(seed);
  for (const char* relation : {"R", "S"}) {
    for (size_t i = 0; i < tuples; ++i) {
      const Tuple t{rng.Range(0, domain), rng.Range(0, domain)};
      catalog->LoadTuple(relation, t, 1);
      if (reference != nullptr) reference->LoadTuple(relation, t, 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel vs serial differential
// ---------------------------------------------------------------------------

class ParallelDrainTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDrainTest, ParallelStreamIsByteIdenticalToSerial) {
  const size_t shards = GetParam();
  const uint64_t seed = testing::SeedBase(0x4EAD0000ull) ^ shards;
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" + std::to_string(shards));

  ShardedCatalogOptions opt;
  opt.num_shards = shards;
  opt.num_threads = shards;  // force a pool even on single-core hosts
  ShardedCatalog catalog(opt);
  QueryCatalog reference;

  // Both queries route on B (R column 1, S column 0). "free" emits the
  // root, so shard streams are disjoint and concatenate; "bound" projects
  // it away, so shard results overlap and merge-sum.
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("free", MustParse("Q(A, B, C) = R(A, B), S(B, C)"),
                                    Options(), &why))
      << why;
  ASSERT_TRUE(catalog.RegisterQuery("bound", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(), &why))
      << why;
  reference.RegisterQuery("free", MustParse("Q(A, B, C) = R(A, B), S(B, C)"), Options());
  reference.RegisterQuery("bound", MustParse("Q(A, C) = R(A, B), S(B, C)"), Options());

  LoadRandom(&catalog, &reference, seed, /*tuples=*/300, /*domain=*/25);
  catalog.Preprocess();
  reference.Preprocess();

  for (const char* name : {"free", "bound"}) {
    SCOPED_TRACE(name);
    const Rows serial = DrainNext(*catalog.Enumerate(name));
    // Odd chunk size so batch boundaries land mid-shard and mid-merge.
    EXPECT_EQ(DrainFill(*catalog.Enumerate(name), 7), serial);
    EXPECT_EQ(DrainNext(*catalog.Enumerate(name, DrainMode::kParallel)), serial);
    EXPECT_EQ(DrainFill(*catalog.Enumerate(name, DrainMode::kParallel), 7), serial);

    // Same content as the unsharded reference (order-insensitive).
    EXPECT_EQ(catalog.EvaluateToMap(name), reference.EvaluateToMap(name));
  }

  // The same holds for a pinned snapshot read under live maintenance.
  catalog.EnableServing();
  catalog.ApplyUpdate("R", Tuple{100, 100}, 1);
  reference.ApplyUpdate("R", Tuple{100, 100}, 1);
  const ReadSnapshot snap = catalog.AcquireSnapshot();
  for (const char* name : {"free", "bound"}) {
    SCOPED_TRACE(name);
    const Rows serial = DrainNext(*catalog.EnumerateAt(name, snap.epoch()));
    EXPECT_EQ(DrainFill(*catalog.EnumerateAt(name, snap.epoch()), 7), serial);
    EXPECT_EQ(DrainNext(*catalog.EnumerateAt(name, snap.epoch(), DrainMode::kParallel)),
              serial);
    EXPECT_EQ(DrainFill(*catalog.EnumerateAt(name, snap.epoch(), DrainMode::kParallel), 7),
              serial);
    EXPECT_EQ(catalog.EvaluateToMapAt(name, snap.epoch()), reference.EvaluateToMap(name));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ParallelDrainTest, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Lane resolution and equality
// ---------------------------------------------------------------------------

TEST(ReadPathTest, FastLaneAndVersionedLaneReturnIdenticalResults) {
  const uint64_t seed = testing::SeedBase(0x4EAD1000ull);
  ShardedCatalogOptions opt;
  opt.num_shards = 2;
  opt.num_threads = 2;
  ShardedCatalog catalog(opt);
  QueryCatalog reference;
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(), &why))
      << why;
  reference.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"), Options());
  LoadRandom(&catalog, &reference, seed, /*tuples=*/120, /*domain=*/12);
  catalog.EnableServing();
  catalog.Preprocess();
  reference.Preprocess();

  // Two idle boundaries reclaim whatever preprocessing retired; the
  // published epoch is then quiescent and snapshots take the fast lane.
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  ASSERT_EQ(catalog.RetiredObjects(), 0u);

  const QueryResult expected_before = reference.EvaluateToMap("join");
  {
    const ReadSnapshot snap = catalog.AcquireSnapshot();
    ResetCounters();
    EXPECT_EQ(catalog.EvaluateToMapAt("join", snap.epoch()), expected_before);
    const CostCounters counters = AggregateCounters();
    EXPECT_EQ(counters.reads, 2u);  // one session per shard
    EXPECT_EQ(counters.read_fast_lane, 2u);
    EXPECT_EQ(counters.read_versioned, 0u);
  }

  // A stalled pin below the next published epoch forces later sessions
  // onto the versioned lane; results must not change for either epoch.
  ReadSnapshot stalled = catalog.AcquireSnapshot();
  UpdateBatch churn;
  churn.push_back(Update{"R", Tuple{0, 0}, 1});
  churn.push_back(Update{"S", Tuple{0, 0}, 1});
  catalog.ApplyBatch(churn);
  reference.ApplyBatch(churn);
  UpdateBatch churn2;
  churn2.push_back(Update{"R", Tuple{0, 0}, -1});
  catalog.ApplyBatch(churn2);
  reference.ApplyBatch(churn2);
  const QueryResult expected_after = reference.EvaluateToMap("join");

  {
    const ReadSnapshot snap = catalog.AcquireSnapshot();
    ASSERT_GT(snap.epoch(), stalled.epoch());
    ResetCounters();
    EXPECT_EQ(catalog.EvaluateToMapAt("join", snap.epoch()), expected_after);
    EXPECT_EQ(catalog.EvaluateToMapAt("join", stalled.epoch()), expected_before);
    const CostCounters counters = AggregateCounters();
    EXPECT_EQ(counters.reads, 4u);
    EXPECT_EQ(counters.read_fast_lane, 0u);
    EXPECT_EQ(counters.read_versioned, 4u);
  }

  // Pin dropped: two boundaries later the catalog is quiescent again and
  // the fast lane is back.
  stalled.Release();
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  EXPECT_EQ(catalog.RetiredObjects(), 0u);
  {
    const ReadSnapshot snap = catalog.AcquireSnapshot();
    ResetCounters();
    EXPECT_EQ(catalog.EvaluateToMapAt("join", snap.epoch()), expected_after);
    const CostCounters counters = AggregateCounters();
    EXPECT_EQ(counters.read_fast_lane, 2u);
    EXPECT_EQ(counters.read_versioned, 0u);
  }

  // Serving disabled entirely: reads resolve kDirect (also a fast lane).
  catalog.DisableServing();
  ResetCounters();
  EXPECT_EQ(catalog.EvaluateToMap("join"), expected_after);
  const CostCounters counters = AggregateCounters();
  EXPECT_EQ(counters.read_fast_lane, 2u);
  EXPECT_EQ(counters.read_versioned, 0u);
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

// ---------------------------------------------------------------------------
// Version-chain flattening
// ---------------------------------------------------------------------------

TEST(ReadPathTest, VersionChainsFlattenAfterStalledPinDrops) {
  const uint64_t seed = testing::SeedBase(0x4EAD2000ull);
  ShardedCatalogOptions opt;
  opt.num_shards = 1;
  ShardedCatalog catalog(opt);
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(), &why))
      << why;
  LoadRandom(&catalog, /*reference=*/nullptr, seed, /*tuples=*/60, /*domain=*/8);
  // The churn target must pre-exist and stay live: multiplicity *changes*
  // (not insert/delete cycles) are what grow per-entry version chains.
  catalog.LoadTuple("R", Tuple{0, 0}, 2);
  catalog.LoadTuple("S", Tuple{0, 0}, 1);
  catalog.EnableServing();
  catalog.Preprocess();
  const QueryResult before = catalog.EvaluateToMap("join");

  // Churn the same tuple's multiplicity under a stalled pin: the entry
  // accumulates a version record per epoch (the pin keeps them alive).
  ReadSnapshot stalled = catalog.AcquireSnapshot();
  const Relation* r = catalog.shard(0).store().Find("R");
  ASSERT_NE(r, nullptr);
  for (int round = 0; round < 6; ++round) {
    UpdateBatch batch;
    batch.push_back(Update{"R", Tuple{0, 0}, round % 2 == 0 ? 1 : -1});
    catalog.ApplyBatch(batch);
  }
  EXPECT_GT(r->DebugVersionRecords(), 0u);
  EXPECT_EQ(catalog.EvaluateToMapAt("join", stalled.epoch()), before);

  // Pin released: the next boundaries run the queued flatten thunks and
  // the chains converge to single-version entries (long-lived serving
  // catalogs do not accumulate history).
  stalled.Release();
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  EXPECT_EQ(r->DebugVersionRecords(), 0u);
  EXPECT_EQ(catalog.RetiredObjects(), 0u);

  // Quiescent again: the next snapshot is a fast-lane session.
  const ReadSnapshot snap = catalog.AcquireSnapshot();
  ResetCounters();
  (void)catalog.EvaluateToMapAt("join", snap.epoch());
  const CostCounters counters = AggregateCounters();
  EXPECT_EQ(counters.read_versioned, 0u);
  EXPECT_GT(counters.read_fast_lane, 0u);
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

// ---------------------------------------------------------------------------
// Serving flip torture (TSan)
// ---------------------------------------------------------------------------

TEST(ReadPathTest, ServingFlipTortureWithTryPinReaders) {
  const uint64_t seed = testing::SeedBase(0x4EAD3000ull);
  constexpr int kRounds = 36;
  constexpr int kFlipEvery = 6;
  constexpr int kReaders = 2;

  ShardedCatalogOptions opt;
  opt.num_shards = 2;
  opt.num_threads = 2;
  ShardedCatalog catalog(opt);
  QueryCatalog reference;
  std::string why;
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(), &why))
      << why;
  reference.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"), Options());
  LoadRandom(&catalog, &reference, seed, /*tuples=*/40, /*domain=*/6);
  catalog.EnableServing();
  catalog.Preprocess();
  reference.Preprocess();

  std::mutex mu;
  std::condition_variable cv;
  std::map<Epoch, QueryResult> refs;  // epoch -> reference result at that boundary
  bool done = false;
  std::atomic<size_t> granted{0};
  std::atomic<size_t> refused{0};
  {
    std::lock_guard<std::mutex> lock(mu);
    refs[catalog.epoch_manager().published()] = reference.EvaluateToMap("join");
  }

  // Readers: TryAcquireSnapshot in a loop. A refused pin means serving is
  // (or is about to be) disabled — retry; a granted pin must read exactly
  // the pinned batch boundary, in parallel drain mode.
  auto reader = [&] {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (done) break;
      }
      ReadSnapshot snap = catalog.TryAcquireSnapshot();
      if (!snap.pinned()) {
        refused.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      granted.fetch_add(1, std::memory_order_relaxed);
      const Epoch e = snap.epoch();
      QueryResult expected;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return refs.count(e) != 0 || done; });
        auto it = refs.find(e);
        if (it == refs.end()) {
          ADD_FAILURE() << "published epoch " << e << " was never recorded";
          break;
        }
        expected = it->second;
      }
      auto enumerator = catalog.EnumerateAt("join", e, DrainMode::kParallel);
      EXPECT_EQ(DrainEnumeration(*enumerator), expected) << "epoch " << e;
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) readers.emplace_back(reader);

  Rng rng(seed);
  auto apply_round = [&] {
    UpdateBatch batch;
    const size_t n = 1 + rng.Below(8);
    for (size_t i = 0; i < n; ++i) {
      const char* relation = rng.Below(2) == 0 ? "R" : "S";
      const Mult mult = rng.Chance(0.3) ? -1 : 1;
      Tuple t{rng.Range(0, 6), rng.Range(0, 6)};
      batch.push_back(Update{relation, std::move(t), mult});
    }
    // Below-zero deletes are skipped identically on both sides.
    catalog.ApplyBatch(batch);
    reference.ApplyBatch(batch);
  };

  for (int round = 0; round < kRounds; ++round) {
    if (round % kFlipEvery == kFlipEvery - 1) {
      // Flip: wait out the pinned readers, run a couple of rounds in plain
      // (kDirect) mode, verify the writer's own direct read, then record
      // the re-published state BEFORE re-admitting pins — the epoch number
      // does not advance while disabled, but its contents do.
      catalog.DisableServing();
      apply_round();
      apply_round();
      EXPECT_EQ(catalog.EvaluateToMap("join"), reference.EvaluateToMap("join"));
      {
        std::lock_guard<std::mutex> lock(mu);
        refs[catalog.epoch_manager().published()] = reference.EvaluateToMap("join");
      }
      catalog.EnableServing();
      cv.notify_all();
      continue;
    }
    apply_round();
    {
      std::lock_guard<std::mutex> lock(mu);
      refs[catalog.epoch_manager().published()] = reference.EvaluateToMap("join");
    }
    cv.notify_all();
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  for (auto& t : readers) t.join();
  EXPECT_GT(granted.load(), 0u);

  // Quiescent wrap-up: serial equals parallel equals reference; all
  // retired memory reclaimed; invariants hold on every shard.
  EXPECT_EQ(catalog.EvaluateToMap("join"), reference.EvaluateToMap("join"));
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  EXPECT_EQ(catalog.RetiredObjects(), 0u);
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

}  // namespace
}  // namespace ivme
