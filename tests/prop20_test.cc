// Proposition 20: Q(F) ≡ ⋃_i Q^(i)(F), where Q^(i) joins the leaf atoms of
// the i-th view tree (light parts included, heavy indicators as
// set-semantics filters). Verified independently of the view/materialization
// and cursor machinery: each Q^(i) is evaluated by the brute-force joiner
// over snapshots of the leaf storages, with each ∃H gate encoded as an
// extra set-semantics atom over its keys. The per-component sums of the
// Q^(i) (derivations partition across strategies, so multiplicities add)
// must equal the brute-force result of the component query.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "src/baselines/brute_force.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "tests/support/catalog.h"
#include "tests/support/random_queries.h"

namespace ivme {
namespace {

// Evaluates the query defined by one view tree's leaves + gates.
QueryResult EvaluateTreeByBruteForce(const ConjunctiveQuery& q, const ViewTree& tree) {
  // Collect leaves and indicator gates.
  std::vector<const ViewNode*> leaves;
  std::vector<const ViewNode*> gates;
  std::function<void(const ViewNode*)> scan = [&](const ViewNode* node) {
    if (node->IsLeaf()) leaves.push_back(node);
    if (node->IsIndicator()) gates.push_back(node);
    for (const auto& child : node->children) scan(child.get());
  };
  scan(tree.root.get());

  // Temp database with snapshots; gates become support-only relations.
  Database db;
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  auto var_names = [&](const Schema& schema) {
    std::vector<std::string> names;
    for (VarId v : schema) names.push_back(q.var_name(v));
    return names;
  };
  int counter = 0;
  for (const ViewNode* leaf : leaves) {
    const std::string name = "L" + std::to_string(counter++);
    Relation* rel = db.AddRelation(name, leaf->schema);
    for (const Relation::Entry* e = leaf->storage->First(); e != nullptr; e = e->next) {
      rel->Apply(e->key, e->value.mult);
    }
    atoms.push_back({name, var_names(leaf->schema)});
  }
  for (const ViewNode* gate : gates) {
    const std::string name = "G" + std::to_string(counter++);
    Relation* rel = db.AddRelation(name, gate->schema);
    for (const Relation::Entry* e = gate->storage->First(); e != nullptr; e = e->next) {
      rel->Apply(e->key, 1);  // ∃ semantics
    }
    atoms.push_back({name, var_names(gate->schema)});
  }

  // Head: the tree's free variables (component-restricted), in head order.
  Schema component_vars;
  for (const ViewNode* leaf : leaves) component_vars = component_vars.Union(leaf->schema);
  std::vector<std::string> head;
  for (VarId v : q.free_vars()) {
    if (component_vars.Contains(v)) head.push_back(q.var_name(v));
  }
  const auto tree_query = ConjunctiveQuery::Make("T", head, atoms);
  return BruteForceEvaluate(tree_query, db);
}

// Sums per-tree results for one component and compares with the brute-force
// result of the component query.
void CheckProposition20(const ConjunctiveQuery& q, Engine& engine, const Database& base_db) {
  const auto& plan = engine.plan();
  for (int c = 0; c < plan.num_components; ++c) {
    QueryResult union_sum;
    Schema component_vars;
    for (const auto& tree : plan.trees) {
      if (tree->component != c) continue;
      for (const auto& [tuple, mult] : EvaluateTreeByBruteForce(q, *tree)) {
        union_sum[tuple] += mult;
      }
      std::function<void(const ViewNode*)> scan = [&](const ViewNode* node) {
        if (node->IsLeaf()) component_vars = component_vars.Union(node->schema);
        for (const auto& child : node->children) scan(child.get());
      };
      scan(tree->root.get());
    }
    for (auto it = union_sum.begin(); it != union_sum.end();) {
      it = it->second == 0 ? union_sum.erase(it) : std::next(it);
    }

    // The component query over the base relations.
    std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
    int occurrence = 0;
    for (const auto& atom : q.atoms()) {
      if (!component_vars.ContainsAll(atom.schema)) {
        ++occurrence;
        continue;
      }
      std::vector<std::string> names;
      for (VarId v : atom.schema) names.push_back(q.var_name(v));
      // Occurrence-split names match the engine's storage naming.
      std::string rel = atom.relation;
      if (q.HasRepeatedSymbol(atom.relation)) rel += "#" + std::to_string(occurrence);
      atoms.push_back({rel, names});
      ++occurrence;
    }
    std::vector<std::string> head;
    for (VarId v : q.free_vars()) {
      if (component_vars.Contains(v)) head.push_back(q.var_name(v));
    }
    const auto comp_query = ConjunctiveQuery::Make("C", head, atoms);
    const auto expected = BruteForceEvaluate(comp_query, base_db);
    EXPECT_EQ(union_sum, expected) << q.ToString() << " component " << c;
  }
}

// Builds an engine + a mirror of per-occurrence storages for the component
// queries above.
void RunProposition20(const std::string& text, double eps, uint64_t seed) {
  const auto q = testing::MustParse(text);
  EngineOptions opts;
  opts.epsilon = eps;
  opts.mode = EvalMode::kDynamic;
  Engine engine(q, opts);
  Database base_db;
  for (size_t a = 0; a < q.num_atoms(); ++a) {
    std::string rel = q.atom(a).relation;
    if (q.HasRepeatedSymbol(q.atom(a).relation)) rel += "#" + std::to_string(a);
    base_db.AddRelation(rel, q.atom(a).schema);
  }
  Rng rng(seed);
  auto arities = [&](const std::string& name) {
    for (const auto& atom : q.atoms()) {
      if (atom.relation == name) return atom.schema.size();
    }
    return size_t{0};
  };
  const auto names = q.RelationNames();
  for (const auto& name : names) {
    for (int i = 0; i < 40; ++i) {
      Tuple t;
      for (size_t j = 0; j < arities(name); ++j) t.PushBack(rng.Range(0, 5));
      engine.LoadTuple(name, t, 1);
      for (size_t a = 0; a < q.num_atoms(); ++a) {
        if (q.atom(a).relation != name) continue;
        std::string rel = name;
        if (q.HasRepeatedSymbol(name)) rel += "#" + std::to_string(a);
        base_db.Find(rel)->Apply(t, 1);
      }
    }
  }
  engine.Preprocess();
  CheckProposition20(q, engine, base_db);

  // And again after an update burst (partitions shift).
  for (int step = 0; step < 120; ++step) {
    const auto& name = names[rng.Below(names.size())];
    Tuple t;
    for (size_t j = 0; j < arities(name); ++j) t.PushBack(rng.Range(0, 5));
    const Mult mult = rng.Chance(0.4) ? -1 : 1;
    if (engine.ApplyUpdate(name, t, mult)) {
      for (size_t a = 0; a < q.num_atoms(); ++a) {
        if (q.atom(a).relation != name) continue;
        std::string rel = name;
        if (q.HasRepeatedSymbol(name)) rel += "#" + std::to_string(a);
        base_db.Find(rel)->Apply(t, mult);
      }
    }
  }
  CheckProposition20(q, engine, base_db);
}

TEST(Proposition20Test, CatalogQueries) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    for (double eps : {0.0, 0.5}) {
      RunProposition20(entry.text, eps, 42);
    }
  }
}

TEST(Proposition20Test, RandomQueries) {
  Rng rng(0x9020);
  for (int trial = 0; trial < 15; ++trial) {
    const auto q = testing::RandomHierarchicalQuery(rng, testing::RandomQueryOptions{});
    RunProposition20(q.ToString(), 0.5, 1000 + static_cast<uint64_t>(trial));
  }
}

}  // namespace
}  // namespace ivme
