// Tests for GYO-based α-acyclicity and the free-connex test.
#include <gtest/gtest.h>

#include "src/query/hypergraph.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

TEST(AcyclicityTest, PathsAreAcyclic) {
  EXPECT_TRUE(IsAlphaAcyclic({Schema({0, 1}), Schema({1, 2})}));
  EXPECT_TRUE(IsAlphaAcyclic({Schema({0, 1}), Schema({1, 2}), Schema({2, 3})}));
}

TEST(AcyclicityTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAlphaAcyclic({Schema({0, 1}), Schema({1, 2}), Schema({0, 2})}));
}

TEST(AcyclicityTest, TriangleWithCoveringEdgeIsAcyclic) {
  // α-acyclicity: adding the covering hyperedge {0,1,2} makes it acyclic.
  EXPECT_TRUE(
      IsAlphaAcyclic({Schema({0, 1}), Schema({1, 2}), Schema({0, 2}), Schema({0, 1, 2})}));
}

TEST(AcyclicityTest, SquareIsCyclic) {
  EXPECT_FALSE(
      IsAlphaAcyclic({Schema({0, 1}), Schema({1, 2}), Schema({2, 3}), Schema({3, 0})}));
}

TEST(AcyclicityTest, EmptyAndSingleEdge) {
  EXPECT_TRUE(IsAlphaAcyclic(std::vector<Schema>{}));
  EXPECT_TRUE(IsAlphaAcyclic({Schema({0, 1, 2})}));
  EXPECT_TRUE(IsAlphaAcyclic({Schema()}));
}

TEST(AcyclicityTest, DuplicateEdges) {
  EXPECT_TRUE(IsAlphaAcyclic({Schema({0, 1}), Schema({0, 1}), Schema({1, 2})}));
}

TEST(AcyclicityTest, Example12IsAcyclic) {
  // R(A,B,C), S(A,B,D), T(A,E,F), U(A,E,G) — join tree U-T-R-S (Example 12).
  const auto q = testing::MustParse("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)");
  EXPECT_TRUE(IsAlphaAcyclic(q));
}

TEST(FreeConnexTest, Example12IsFreeConnex) {
  const auto q = testing::MustParse("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)");
  EXPECT_TRUE(IsFreeConnex(q));
}

TEST(FreeConnexTest, Example28IsNotFreeConnex) {
  // Q(A,C) = R(A,B), S(B,C): acyclic but the head {A,C} creates a cycle.
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  EXPECT_TRUE(IsAlphaAcyclic(q));
  EXPECT_FALSE(IsFreeConnex(q));
}

TEST(FreeConnexTest, FullAcyclicQueriesAreFreeConnex) {
  const auto q = testing::MustParse("Q(A, B, C) = R(A, B), S(B, C)");
  EXPECT_TRUE(IsFreeConnex(q));
}

TEST(FreeConnexTest, BooleanAcyclicQueriesAreFreeConnex) {
  const auto q = testing::MustParse("Q() = R(A, B), S(B, C)");
  EXPECT_TRUE(IsFreeConnex(q));
}

TEST(FreeConnexTest, CatalogAgreesWithExpectations) {
  for (const auto& entry : testing::PaperQueryCatalog()) {
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(IsFreeConnex(q), entry.free_connex) << entry.label;
  }
}

TEST(ConnectedComponentsTest, SingleComponent) {
  const auto groups = ConnectedComponents({Schema({0, 1}), Schema({1, 2})});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
}

TEST(ConnectedComponentsTest, TwoComponents) {
  const auto groups = ConnectedComponents({Schema({0, 1}), Schema({2}), Schema({2, 3})});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<int>{0}));
  EXPECT_EQ(groups[1], (std::vector<int>{1, 2}));
}

TEST(ConnectedComponentsTest, TransitiveSharing) {
  const auto groups =
      ConnectedComponents({Schema({0, 1}), Schema({2, 3}), Schema({1, 2})});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace ivme
