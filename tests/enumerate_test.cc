// Enumeration-layer tests: distinctness, union deduplication across heavy
// groundings and across view trees, multiplicity aggregation, and
// Cartesian-product composition (Section 5).
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/enumerate/cursor.h"
#include "src/workload/generator.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions Opts(double eps, EvalMode mode = EvalMode::kDynamic) {
  EngineOptions o;
  o.epsilon = eps;
  o.mode = mode;
  return o;
}

TEST(EnumerateTest, DistinctTuplesAcrossOverlappingGroundings) {
  // Two heavy B-values producing the SAME (A,C) pairs: the union must
  // deduplicate and sum multiplicities (Example 28's core difficulty).
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(0.0));  // ε=0: all keys heavy
  m.Preprocess();
  for (Value b : {0, 1}) {
    for (Value a = 0; a < 4; ++a) m.Update("R", Tuple{a, b}, 1);
    for (Value c = 0; c < 4; ++c) m.Update("S", Tuple{b, c}, 1);
  }
  auto it = m.engine().Enumerate();
  std::set<Tuple> seen;
  Tuple t;
  Mult mult = 0;
  while (it->Next(&t, &mult)) {
    EXPECT_TRUE(seen.insert(t).second) << "duplicate " << t.ToString();
    EXPECT_EQ(mult, 2) << t.ToString();  // one witness per heavy b
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(m.Diff(), "");
}

TEST(EnumerateTest, UnionAcrossTreesDeduplicates) {
  // A tuple produced by both the light tree and a heavy tree (via different
  // B-values) must appear once with the summed multiplicity.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(0.5));
  for (Value i = 0; i < 200; ++i) m.Load("R", Tuple{500 + i, 600 + i}, 1);
  m.Preprocess();  // θ ≈ 20 with M ≈ 400
  // Heavy b=0 (degree 30 in R) and light b=1 both produce (1, 2).
  for (Value a = 0; a < 30; ++a) m.Update("R", Tuple{a, 0}, 1);
  m.Update("S", Tuple{0, 2}, 1);
  m.Update("R", Tuple{1, 1}, 1);
  m.Update("S", Tuple{1, 2}, 1);
  const auto result = m.engine().EvaluateToMap();
  EXPECT_EQ(result.at(Tuple{1, 2}), 2);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EnumerateTest, BooleanQueryEmitsSingleEmptyTuple) {
  MirroredEngine m("Q() = R(A, B), S(B)", Opts(0.5));
  m.Preprocess();
  EXPECT_TRUE(m.engine().EvaluateToMap().empty());
  m.Update("R", Tuple{1, 5}, 2);
  m.Update("R", Tuple{2, 5}, 1);
  m.Update("S", Tuple{5}, 3);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{}), 9);  // (2+1)*3
  EXPECT_EQ(m.Diff(), "");
}

TEST(EnumerateTest, CartesianProductOrderAndMultiplicities) {
  MirroredEngine m("Q(A, B) = R(A), S(B)", Opts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1}, 2);
  m.Update("R", Tuple{2}, 1);
  m.Update("S", Tuple{10}, 3);
  m.Update("S", Tuple{11}, 1);
  auto it = m.engine().Enumerate();
  std::map<Tuple, Mult> seen;
  Tuple t;
  Mult mult = 0;
  while (it->Next(&t, &mult)) {
    EXPECT_TRUE(seen.emplace(t, mult).second);
    ASSERT_EQ(t.size(), 2u);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.at(Tuple{1, 10}), 6);
  EXPECT_EQ(seen.at(Tuple{2, 11}), 1);
}

TEST(EnumerateTest, MixedComponentWithBooleanPart) {
  // Second component is Boolean: it gates the first component's stream.
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C), T(D), U(D, E)", Opts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1, 0}, 1);
  m.Update("S", Tuple{0, 9}, 1);
  EXPECT_TRUE(m.engine().EvaluateToMap().empty());  // T ⋈ U empty
  m.Update("T", Tuple{4}, 2);
  m.Update("U", Tuple{4, 5}, 3);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(Tuple{1, 9}), 6);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(EnumerateTest, HeadOrderIndependentOfBodyOrder) {
  // The head reorders variables relative to the body.
  MirroredEngine m("Q(C, A) = R(A, B), S(B, C)", Opts(0.5));
  m.Preprocess();
  m.Update("R", Tuple{1, 0}, 1);
  m.Update("S", Tuple{0, 9}, 1);
  const auto result = m.engine().EvaluateToMap();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.begin()->first, (Tuple{9, 1}));  // (C, A)
  EXPECT_EQ(m.Diff(), "");
}

TEST(EnumerateTest, EnumeratorsAreIndependentSessions) {
  MirroredEngine m("Q(A) = R(A, B), S(B)", Opts(0.5));
  m.Preprocess();
  for (Value i = 0; i < 20; ++i) {
    m.Update("R", Tuple{i, i % 5}, 1);
    m.Update("S", Tuple{i % 5}, 1);
  }
  auto it1 = m.engine().Enumerate();
  auto it2 = m.engine().Enumerate();
  Tuple t1, t2;
  Mult m1 = 0, m2 = 0;
  size_t count1 = 0;
  while (it1->Next(&t1, &m1)) ++count1;
  size_t count2 = 0;
  while (it2->Next(&t2, &m2)) ++count2;
  EXPECT_EQ(count1, count2);
  EXPECT_EQ(count1, 20u);
}

TEST(EnumerateTest, LookupTreeMatchesEnumeratedMultiplicities) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(0.5));
  Rng rng(31);
  for (int i = 0; i < 150; ++i) {
    m.Load("R", Tuple{rng.Range(0, 10), rng.Range(0, 6)}, 1);
    m.Load("S", Tuple{rng.Range(0, 6), rng.Range(0, 10)}, 1);
  }
  m.Preprocess();
  // Every enumerated tuple must be confirmed by the sum of per-tree
  // lookups, and missing tuples must look up to 0.
  const auto& plan = m.engine().plan();
  const auto result = m.engine().EvaluateToMap();
  for (const auto& [tuple, mult] : result) {
    Mult looked_up = 0;
    for (const auto& tree : plan.trees) {
      looked_up += LookupTree(tree->root.get(),
                              Tuple{},
                              ProjectTuple(tuple, ProjectionPositions(
                                                      m.query().free_vars(),
                                                      tree->root->emit_schema)));
    }
    EXPECT_EQ(looked_up, mult) << tuple.ToString();
  }
  Mult absent = 0;
  for (const auto& tree : plan.trees) {
    absent += LookupTree(tree->root.get(), Tuple{}, Tuple{999, 999});
  }
  EXPECT_EQ(absent, 0);
}

TEST(EnumerateTest, LargeSkewedInstanceEnumeratesExactly) {
  // Zipf-skewed keys at several ε values; checks the full pipeline at a
  // couple thousand tuples.
  for (double eps : {0.0, 0.5, 1.0}) {
    MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(eps));
    const auto r = workload::ZipfTuples(1500, 2, 1, 50, 1.2, 400, 17);
    const auto s = workload::ZipfTuples(1500, 2, 0, 50, 1.2, 400, 18);
    for (const auto& t : r) m.Load("R", t, 1);
    for (const auto& t : s) m.Load("S", t, 1);
    m.Preprocess();
    EXPECT_EQ(m.Diff(), "") << "eps=" << eps;
  }
}

}  // namespace
}  // namespace ivme
