// Epoch-based reclamation tests: the EpochManager / RetireLog two-phase
// contract in isolation, versioned Relation reads across erases and
// multiplicity rewrites, and randomized pin/unpin schedules against a
// serving ShardedCatalog. The core guarantees under test:
//   - an object retired at epoch e is never reclaimed while any reader pins
//     an epoch e' <= e (phase 1 waits for the pin floor; phase 2 waits for
//     a second grace period past the unlink stamp);
//   - a stalled reader bounds memory (retired objects accumulate on the
//     log) but never leaks it — once the pin drops, two reclaim rounds
//     return the log to empty;
//   - a pinned snapshot gives repeatable reads no matter how much the
//     writer churns.
// Run under ASan to turn any use-after-free or leak into a hard failure.
// IVME_SEED overrides the stress seeds (tests/support/seed.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/rng.h"
#include "src/core/sharded_catalog.h"
#include "src/storage/relation.h"
#include "tests/support/catalog.h"
#include "tests/support/seed.h"

namespace ivme {
namespace {

using testing::MustParse;

EngineOptions Dynamic(double eps) {
  EngineOptions options;
  options.epsilon = eps;
  options.mode = EvalMode::kDynamic;
  return options;
}

// ---------------------------------------------------------------------------
// EpochManager / RetireLog units
// ---------------------------------------------------------------------------

TEST(EpochManagerTest, PublishPinAndFloor) {
  EpochManager m;
  EXPECT_EQ(m.published(), 0u);
  EXPECT_EQ(m.PinFloor(), 0u);

  m.Publish();
  m.Publish();
  EXPECT_EQ(m.published(), 2u);
  EXPECT_EQ(m.PinFloor(), 2u);  // no pins: floor follows published

  const Epoch a = m.Pin();
  EXPECT_EQ(a, 2u);
  m.Publish();
  EXPECT_EQ(m.PinFloor(), 2u);  // held back by the pin
  const Epoch b = m.Pin();
  EXPECT_EQ(b, 3u);
  EXPECT_EQ(m.ActivePins(), 2u);

  m.Unpin(a);
  EXPECT_EQ(m.PinFloor(), 3u);
  m.Unpin(b);
  EXPECT_EQ(m.PinFloor(), 3u);
  EXPECT_EQ(m.ActivePins(), 0u);
}

TEST(EpochManagerTest, KeepEpochsSortedDistinct) {
  EpochManager m;
  m.Publish();  // P = 1
  const Epoch a = m.Pin();
  const Epoch a2 = m.Pin();  // same epoch pinned twice
  m.Publish();               // P = 2
  const Epoch b = m.Pin();
  m.Publish();  // P = 3

  EXPECT_EQ(m.KeepEpochs(), (std::vector<Epoch>{1, 2, 3}));
  m.Unpin(a);
  EXPECT_EQ(m.KeepEpochs(), (std::vector<Epoch>{1, 2, 3}));  // a2 still holds 1
  m.Unpin(a2);
  EXPECT_EQ(m.KeepEpochs(), (std::vector<Epoch>{2, 3}));
  m.Unpin(b);
  EXPECT_EQ(m.KeepEpochs(), (std::vector<Epoch>{3}));
}

struct Tracker {
  int unlinks = 0;
  int frees = 0;
};

void CountUnlink(void* owner, void* /*object*/) { ++static_cast<Tracker*>(owner)->unlinks; }
void CountFree(void* owner, void* /*object*/) { ++static_cast<Tracker*>(owner)->frees; }

TEST(RetireLogTest, TwoPhaseReclamation) {
  RetireLog log;
  Tracker t;
  // Object dies at epoch 2 (the batch being built on top of published 1).
  log.Retire(/*death=*/2, &CountUnlink, &CountFree, &t, nullptr);

  // floor 1 < death: untouched.
  log.Reclaim(/*floor=*/1, /*working=*/2);
  EXPECT_EQ(t.unlinks, 0);
  EXPECT_EQ(t.frees, 0);
  EXPECT_EQ(log.pending_size(), 1u);

  // floor reaches the death epoch: phase 1 unlinks, stamps limbo with the
  // current working epoch (3) — but memory must survive this round.
  log.Reclaim(/*floor=*/2, /*working=*/3);
  EXPECT_EQ(t.unlinks, 1);
  EXPECT_EQ(t.frees, 0);
  EXPECT_EQ(log.limbo_size(), 1u);

  // Same floor again: the limbo stamp (3) is above the floor — still alive.
  log.Reclaim(/*floor=*/2, /*working=*/3);
  EXPECT_EQ(t.frees, 0);

  // Floor passes the unlink stamp: phase 2 frees.
  log.Reclaim(/*floor=*/3, /*working=*/4);
  EXPECT_EQ(t.unlinks, 1);
  EXPECT_EQ(t.frees, 1);
  EXPECT_TRUE(log.empty());
}

TEST(RetireLogTest, PinnedEpochBlocksReclamationButNotMemoryAccounting) {
  EpochManager m;
  RetireLog log;
  Tracker t;

  m.Publish();              // P = 1
  const Epoch pin = m.Pin();  // reader stalls at 1

  // 50 rounds of churn: each working epoch retires one object.
  for (Epoch round = 0; round < 50; ++round) {
    const Epoch working = m.published() + 1;
    log.Retire(working, &CountUnlink, &CountFree, &t, nullptr);
    m.Publish();
    log.Reclaim(m.PinFloor(), m.published() + 1);
  }
  // The stalled reader pins epoch 1 < every death epoch: nothing touched,
  // everything accounted for (bounded, not leaked).
  EXPECT_EQ(t.unlinks, 0);
  EXPECT_EQ(t.frees, 0);
  EXPECT_EQ(log.pending_size(), 50u);

  m.Unpin(pin);
  m.Publish();
  log.Reclaim(m.PinFloor(), m.published() + 1);  // phase 1 for all 50
  EXPECT_EQ(t.unlinks, 50);
  m.Publish();
  log.Reclaim(m.PinFloor(), m.published() + 1);  // phase 2 for all 50
  EXPECT_EQ(t.frees, 50);
  EXPECT_TRUE(log.empty());
}

TEST(RetireLogTest, DrainFreesEverything) {
  RetireLog log;
  Tracker t;
  log.Retire(5, &CountUnlink, &CountFree, &t, nullptr);
  log.Retire(7, &CountUnlink, &CountFree, &t, nullptr);
  log.AddLimbo(9, &CountFree, &t, nullptr);
  log.Drain();
  EXPECT_EQ(t.unlinks, 2);
  EXPECT_EQ(t.frees, 3);
  EXPECT_TRUE(log.empty());
}

TEST(EpochManagerTest, ExclusiveGateWaitsForPins) {
  EpochManager m;
  const Epoch pin = m.Pin();
  std::atomic<bool> entered{false};
  std::thread quiescer([&] {
    m.BeginExclusive();
    entered.store(true);
    m.EndExclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(entered.load());  // blocked on the active pin
  m.Unpin(pin);
  quiescer.join();
  EXPECT_TRUE(entered.load());
}

TEST(EpochManagerTest, PinBlocksDuringExclusive) {
  EpochManager m;
  m.BeginExclusive();
  std::atomic<bool> pinned{false};
  std::thread reader([&] {
    const Epoch e = m.Pin();
    pinned.store(true);
    m.Unpin(e);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pinned.load());  // gate is closed
  m.EndExclusive();
  reader.join();
  EXPECT_TRUE(pinned.load());
}

// ---------------------------------------------------------------------------
// Versioned Relation reads across erases and rewrites
// ---------------------------------------------------------------------------

/// One writer domain driven by hand: publish + reclaim like the serving
/// facade does between batches.
struct ServingDomain {
  EpochManager epochs;
  RetireLog log;
  EpochContext ctx;

  ServingDomain() : ctx{&log, epochs.published_ptr()} {}

  void BeginMutation() { log.set_keep_epochs(epochs.KeepEpochs()); }
  void PublishAndReclaim() {
    epochs.Publish();
    log.Reclaim(epochs.PinFloor(), epochs.published() + 1);
  }
};

TEST(VersionedRelationTest, ErasedEntryStaysVisibleWhilePinned) {
  ServingDomain dom;
  Relation r(Schema({0, 1}), "R");
  const int idx = r.EnsureIndexOnColumns({0});
  r.SetEpochContext(&dom.ctx);

  dom.BeginMutation();
  r.Apply(Tuple{1, 10}, 3);  // born in working epoch 1
  dom.PublishAndReclaim();   // P = 1

  const Epoch pin = dom.epochs.Pin();
  EXPECT_EQ(pin, 1u);

  dom.BeginMutation();
  r.Apply(Tuple{1, 10}, -3);  // erased in working epoch 2
  dom.PublishAndReclaim();    // P = 2, floor stuck at the pin

  // Writer-side view: gone. Snapshot view at the pin: fully intact,
  // including the secondary index path.
  EXPECT_EQ(r.Multiplicity(Tuple{1, 10}), 0);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.MultiplicityAt(Tuple{1, 10}, pin), 3);
  ASSERT_NE(r.FindAt(Tuple{1, 10}, pin), nullptr);
  const Relation::IndexLink* link = r.index(idx).FirstForKeyAt(Tuple{1}, pin);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->entry->key, (Tuple{1, 10}));
  EXPECT_EQ(Relation::Index::NextLinkAt(link, pin), nullptr);
  const Relation::Entry* e = r.FirstAt(pin);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(Relation::EntryMultAt(e, pin), 3);
  EXPECT_EQ(Relation::NextAt(e, pin), nullptr);

  // The zombie is held by the log, not freed.
  EXPECT_GT(dom.log.pending_size() + dom.log.limbo_size(), 0u);

  dom.epochs.Unpin(pin);
  dom.BeginMutation();
  dom.PublishAndReclaim();  // phase 1
  dom.BeginMutation();
  dom.PublishAndReclaim();  // phase 2
  EXPECT_TRUE(dom.log.empty());

  // Leaving versioned mode asserts internally that no zombies remain.
  r.SetEpochContext(nullptr);
}

TEST(VersionedRelationTest, MultiplicityHistoryAnswersEveryPinnedEpoch) {
  ServingDomain dom;
  Relation r(Schema({0}), "R");
  r.SetEpochContext(&dom.ctx);

  dom.BeginMutation();
  r.Apply(Tuple{7}, 1);  // epoch 1: mult 1
  dom.PublishAndReclaim();
  const Epoch p1 = dom.epochs.Pin();

  dom.BeginMutation();
  r.Apply(Tuple{7}, 4);  // epoch 2: mult 5
  dom.PublishAndReclaim();
  const Epoch p2 = dom.epochs.Pin();

  dom.BeginMutation();
  r.Apply(Tuple{7}, -2);  // epoch 3: mult 3
  dom.PublishAndReclaim();

  EXPECT_EQ(r.Multiplicity(Tuple{7}), 3);
  EXPECT_EQ(r.MultiplicityAt(Tuple{7}, p1), 1);
  EXPECT_EQ(r.MultiplicityAt(Tuple{7}, p2), 5);
  EXPECT_EQ(r.MultiplicityAt(Tuple{7}, 3), 3);

  dom.epochs.Unpin(p1);
  dom.epochs.Unpin(p2);
  dom.log.Drain();
  r.SetEpochContext(nullptr);
}

TEST(VersionedRelationTest, HistoryChainsStayPrunedWithoutPins) {
  ServingDomain dom;
  Relation r(Schema({0}), "R");
  r.SetEpochContext(&dom.ctx);

  // 50 rewrites of one tuple with no reader pins: the per-entry version
  // chain must stay at O(#keep epochs), not grow with the write count, and
  // the pruned records must drain from limbo every round.
  for (int i = 0; i < 50; ++i) {
    dom.BeginMutation();
    r.Apply(Tuple{9}, 1);
    dom.PublishAndReclaim();
  }
  EXPECT_LE(dom.log.pending_size() + dom.log.limbo_size(), 4u);
  EXPECT_EQ(r.Multiplicity(Tuple{9}), 50);

  dom.log.Drain();
  r.SetEpochContext(nullptr);
}

// ---------------------------------------------------------------------------
// Serving-facade reclamation
// ---------------------------------------------------------------------------

TEST(ServingCatalogTest, StalledReaderBoundsMemoryThenDrains) {
  ShardedCatalogOptions opt;
  opt.num_shards = 1;
  ShardedCatalog catalog(opt);
  ASSERT_TRUE(catalog.RegisterQuery("q", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Dynamic(0.5)));
  catalog.EnableServing();
  catalog.Load("S", {{Tuple{1, 100}, 1}, {Tuple{2, 200}, 1}});
  catalog.Preprocess();

  ReadSnapshot snap = catalog.AcquireSnapshot();
  const QueryResult at_pin = catalog.EvaluateToMapAt("q", snap.epoch());
  EXPECT_TRUE(at_pin.empty());

  // Churn: every odd round deletes what the even round inserted, retiring
  // entries, index links, and buckets each time.
  for (int round = 0; round < 30; ++round) {
    UpdateBatch batch;
    const Mult m = (round % 2 == 0) ? 1 : -1;
    for (Value i = 0; i < 8; ++i) batch.push_back(Update{"R", Tuple{i, 1 + (i % 2)}, m});
    catalog.ApplyBatch(batch);
  }
  // The stalled reader holds the floor: retired objects accumulate
  // (bounded by the churn, not leaked) and the snapshot stays repeatable.
  EXPECT_GT(catalog.RetiredObjects(), 0u);
  EXPECT_EQ(catalog.EvaluateToMapAt("q", snap.epoch()), at_pin);

  snap.Release();
  catalog.ApplyBatch(UpdateBatch{});  // publish + phase 1
  catalog.ApplyBatch(UpdateBatch{});  // publish + phase 2
  EXPECT_EQ(catalog.RetiredObjects(), 0u);
}

/// Valid mixed stream over R, S (deletes only target live tuples).
class ChurnGen {
 public:
  explicit ChurnGen(uint64_t seed) : rng_(seed) {}

  Update Next(Value domain) {
    const char* names[] = {"R", "S"};
    const size_t r = rng_.Below(2);
    auto& live = live_[r];
    if (!live.empty() && rng_.Chance(0.45)) {
      const size_t pick = rng_.Below(live.size());
      Update u{names[r], live[pick], -1};
      live[pick] = live.back();
      live.pop_back();
      return u;
    }
    Tuple t{rng_.Range(0, domain), rng_.Range(0, domain)};
    live.push_back(t);
    return Update{names[r], std::move(t), 1};
  }

 private:
  Rng rng_;
  std::vector<Tuple> live_[2];
};

TEST(ServingCatalogTest, RandomizedPinUnpinSchedules) {
  const uint64_t base = testing::SeedBase(0xEC0C0000ull);
  for (uint64_t rep = 0; rep < 5; ++rep) {
    const uint64_t seed = base + rep;
    SCOPED_TRACE("reproduce with IVME_SEED=" + std::to_string(seed) +
                 " (scenario seed)");
    Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
    ChurnGen gen(seed);

    ShardedCatalogOptions opt;
    opt.num_shards = 1;
    ShardedCatalog catalog(opt);
    ASSERT_TRUE(catalog.RegisterQuery("q", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                      Dynamic(0.5)));
    catalog.EnableServing();
    catalog.Preprocess();

    struct Held {
      ReadSnapshot snap;
      QueryResult expected;
    };
    std::vector<Held> held;

    for (int round = 0; round < 60; ++round) {
      UpdateBatch batch;
      const size_t n = 1 + rng.Below(12);
      for (size_t i = 0; i < n; ++i) batch.push_back(gen.Next(/*domain=*/6));
      catalog.ApplyBatch(batch);

      if (rng.Chance(0.5)) {
        Held h;
        h.snap = catalog.AcquireSnapshot();
        h.expected = catalog.EvaluateToMapAt("q", h.snap.epoch());
        // A snapshot taken between batches equals the live state.
        EXPECT_EQ(h.expected, catalog.EvaluateToMap("q")) << "seed=" << seed;
        held.push_back(std::move(h));
      }
      if (!held.empty() && rng.Chance(0.4)) {
        const size_t pick = rng.Below(held.size());
        EXPECT_EQ(catalog.EvaluateToMapAt("q", held[pick].snap.epoch()),
                  held[pick].expected)
            << "seed=" << seed << " round=" << round;
        held[pick] = std::move(held.back());
        held.pop_back();
      }
      if (rng.Chance(0.2)) {
        // Every held snapshot must give repeatable reads, regardless of age.
        for (const Held& h : held) {
          EXPECT_EQ(catalog.EvaluateToMapAt("q", h.snap.epoch()), h.expected)
              << "seed=" << seed << " round=" << round;
        }
      }
    }

    held.clear();
    catalog.ApplyBatch(UpdateBatch{});
    catalog.ApplyBatch(UpdateBatch{});
    EXPECT_EQ(catalog.RetiredObjects(), 0u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ivme
