// Static evaluation (Theorem 2): engine results must equal brute force for
// every hierarchical catalog query, every ε, and several data shapes.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/workload/generator.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions StaticOpts(double eps) {
  EngineOptions o;
  o.mode = EvalMode::kStatic;
  o.epsilon = eps;
  return o;
}

// Loads a small random database into every relation of the mirrored engine.
void LoadRandom(MirroredEngine* m, size_t tuples_per_relation, Value domain, uint64_t seed) {
  Rng rng(seed);
  for (const auto& name : m->query().RelationNames()) {
    size_t arity = 0;
    for (const auto& atom : m->query().atoms()) {
      if (atom.relation == name) arity = atom.schema.size();
    }
    for (size_t i = 0; i < tuples_per_relation; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.PushBack(static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))));
      }
      const Mult mult = rng.Chance(0.2) ? 2 : 1;  // exercise multiplicities
      m->Load(name, t, mult);
    }
  }
}

class StaticSweepTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(StaticSweepTest, MatchesBruteForceOnRandomData) {
  const auto [query_idx, eps] = GetParam();
  const auto entry = testing::HierarchicalCatalog()[static_cast<size_t>(query_idx)];
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    MirroredEngine m(entry.text, StaticOpts(eps));
    LoadRandom(&m, 60, /*domain=*/8, seed);
    m.Preprocess();
    EXPECT_EQ(m.Diff(), "") << entry.label << " eps=" << eps << " seed=" << seed;
  }
}

TEST_P(StaticSweepTest, MatchesBruteForceOnSkewedData) {
  const auto [query_idx, eps] = GetParam();
  const auto entry = testing::HierarchicalCatalog()[static_cast<size_t>(query_idx)];
  MirroredEngine m(entry.text, StaticOpts(eps));
  Rng rng(99);
  // Heavily skewed: one value dominates every column.
  for (const auto& name : m.query().RelationNames()) {
    size_t arity = 0;
    for (const auto& atom : m.query().atoms()) {
      if (atom.relation == name) arity = atom.schema.size();
    }
    for (size_t i = 0; i < 80; ++i) {
      Tuple t;
      for (size_t j = 0; j < arity; ++j) {
        t.PushBack(rng.Chance(0.6) ? 0 : rng.Range(1, 6));
      }
      m.Load(name, t, 1);
    }
  }
  m.Preprocess();
  EXPECT_EQ(m.Diff(), "") << entry.label << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueriesAllEps, StaticSweepTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(testing::HierarchicalCatalog().size())),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      const auto entry =
          testing::HierarchicalCatalog()[static_cast<size_t>(std::get<0>(info.param))];
      return entry.label + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(EngineStaticTest, EmptyDatabaseGivesEmptyResult) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    MirroredEngine m(entry.text, StaticOpts(0.5));
    m.Preprocess();
    EXPECT_EQ(m.Diff(), "") << entry.label;
    EXPECT_TRUE(m.engine().EvaluateToMap().empty()) << entry.label;
  }
}

TEST(EngineStaticTest, Example28MatrixMultiplication) {
  // Q(A,C) = R(A,B), S(B,C) over Boolean matrices computes the product's
  // support with multiplicities = number of witnesses (inner products).
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", StaticOpts(0.5));
  const auto r = workload::MatrixTuples(12, 0.4, 7);
  const auto s = workload::MatrixTuples(12, 0.4, 8);
  for (const auto& t : r) m.Load("R", t, 1);
  for (const auto& t : s) m.Load("S", t, 1);
  m.Preprocess();
  EXPECT_EQ(m.Diff(), "");
}

TEST(EngineStaticTest, HeavyLightBoundaryData) {
  // Degrees straddling the θ threshold on both sides.
  for (double eps : {0.0, 0.5, 1.0}) {
    MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", StaticOpts(eps));
    const auto r = workload::HeavyLightPairs(3, 9, 30, /*key_first=*/false, 1);
    const auto s = workload::HeavyLightPairs(3, 9, 30, /*key_first=*/true, 2);
    for (const auto& t : r) m.Load("R", t, 1);
    for (const auto& t : s) m.Load("S", t, 1);
    m.Preprocess();
    EXPECT_EQ(m.Diff(), "") << "eps=" << eps;
  }
}

TEST(EngineStaticTest, SelfJoinRepeatedSymbol) {
  MirroredEngine m("Q(B, C) = R(A, B), R(A, C)", StaticOpts(0.5));
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    m.Load("R", Tuple{rng.Range(0, 6), rng.Range(0, 6)}, 1);
  }
  m.Preprocess();
  EXPECT_EQ(m.Diff(), "");
}

TEST(EngineStaticTest, SelfJoinPermutedVariables) {
  // Regression: a join input whose schema is a permutation of the join key
  // (here R(B, A) against key (A, B)) must be point-looked-up in its own
  // layout during materialization, not in key order.
  for (const double eps : {0.0, 0.5, 1.0}) {
    MirroredEngine m("Q(A, B) = R(A, B), R(B, A)", StaticOpts(eps));
    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
      m.Load("R", Tuple{rng.Range(0, 5), rng.Range(0, 5)}, 1);
    }
    m.Preprocess();
    EXPECT_EQ(m.Diff(), "") << "eps=" << eps;
  }
}

TEST(EngineStaticTest, DeepHierarchicalQuery) {
  MirroredEngine m("Q(A, D) = R(A, B, C, D), S(A, B, C), T(A, B), U(A)", StaticOpts(0.5));
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    m.Load("R", Tuple{rng.Range(0, 3), rng.Range(0, 3), rng.Range(0, 3), rng.Range(0, 3)}, 1);
    m.Load("S", Tuple{rng.Range(0, 3), rng.Range(0, 3), rng.Range(0, 3)}, 1);
    m.Load("T", Tuple{rng.Range(0, 3), rng.Range(0, 3)}, 1);
    m.Load("U", Tuple{rng.Range(0, 3)}, 1);
  }
  m.Preprocess();
  EXPECT_EQ(m.Diff(), "");
}

TEST(EngineStaticTest, InvariantsHoldAfterPreprocess) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    MirroredEngine m(entry.text, StaticOpts(0.5));
    LoadRandom(&m, 40, 6, 77);
    m.Preprocess();
    EXPECT_EQ(m.FullCheck(), "") << entry.label;
  }
}

}  // namespace
}  // namespace ivme
