// Quantitative cost-model tests on the operation counters: the per-call
// costs the complexity proofs rely on, checked without wall clocks.
//   * covering enumeration advances O(1) per tuple,
//   * union enumeration advances O(#groundings) per tuple,
//   * q-hierarchical updates cost O(1) delta steps,
//   * light updates cost O(θ) delta steps,
//   * heavy updates cost O(1) delta steps.
#include <gtest/gtest.h>

#include "src/common/counters.h"
#include "tests/support/mirror.h"

namespace ivme {
namespace {

using testing::MirroredEngine;

EngineOptions Opts(double eps) {
  EngineOptions o;
  o.epsilon = eps;
  o.mode = EvalMode::kDynamic;
  return o;
}

// R/S with `keys` join keys of degree `degree`.
void LoadDegrees(MirroredEngine* m, size_t keys, size_t degree) {
  Value partner = 1000000;
  for (size_t k = 0; k < keys; ++k) {
    for (size_t d = 0; d < degree; ++d) {
      m->Load("R", Tuple{partner++, static_cast<Value>(k)}, 1);
      m->Load("S", Tuple{static_cast<Value>(k), partner++}, 1);
    }
  }
}

TEST(CostModelTest, CoveringEnumerationIsConstantPerTuple) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(1.0));  // all light
  LoadDegrees(&m, 50, 8);
  m.Preprocess();
  ResetCounters();
  size_t tuples = 0;
  auto it = m.engine().Enumerate();
  Tuple t;
  Mult mult = 0;
  while (it->Next(&t, &mult)) ++tuples;
  ASSERT_EQ(tuples, 50u * 64u);
  const double steps_per_tuple =
      static_cast<double>(AggregateCounters().enum_steps) / static_cast<double>(tuples);
  EXPECT_LT(steps_per_tuple, 4.0);
}

TEST(CostModelTest, UnionEnumerationCostsOneProbePerBucketPerTuple) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(0.0));  // all heavy
  const size_t buckets = 64;
  LoadDegrees(&m, buckets, 4);
  m.Preprocess();
  ResetCounters();
  size_t tuples = 0;
  auto it = m.engine().Enumerate();
  Tuple t;
  Mult mult = 0;
  while (tuples < 64 && it->Next(&t, &mult)) ++tuples;
  const double steps_per_tuple =
      static_cast<double>(AggregateCounters().enum_steps) / static_cast<double>(tuples);
  // Each Next costs ~#buckets probes for the replacement test plus
  // ~#buckets for the multiplicity sum (a small constant factor).
  EXPECT_GT(steps_per_tuple, static_cast<double>(buckets) * 0.8);
  EXPECT_LT(steps_per_tuple, static_cast<double>(buckets) * 8.0);
}

TEST(CostModelTest, QHierarchicalUpdatesAreConstant) {
  MirroredEngine m("Q(A, B) = R(A, B), S(A)", Opts(0.5));
  for (Value i = 0; i < 2000; ++i) m.Load("R", Tuple{i % 50, i}, 1);
  for (Value i = 0; i < 50; ++i) m.Load("S", Tuple{i}, 1);
  m.Preprocess();
  ResetCounters();
  const size_t updates = 100;
  for (Value i = 0; i < static_cast<Value>(updates); ++i) {
    m.Update("R", Tuple{i % 50, 100000 + i}, 1);
  }
  const double steps_per_update =
      static_cast<double>(AggregateCounters().delta_steps) / static_cast<double>(updates);
  // Constant per update even though key degrees are ~40 (q-hierarchical:
  // no iteration over siblings is ever needed thanks to the aux views).
  EXPECT_LT(steps_per_update, 12.0);
}

TEST(CostModelTest, HeavyUpdatesAreConstantLightUpdatesCostTheta) {
  MirroredEngine m("Q(A, C) = R(A, B), S(B, C)", Opts(0.5));
  // Key 0 heavy (degree 200), keys 1..100 light (degree 15); θ ≈ 82.
  Value partner = 1000000;
  for (int d = 0; d < 200; ++d) {
    m.Load("R", Tuple{partner++, 0}, 1);
    m.Load("S", Tuple{0, partner++}, 1);
  }
  for (Value k = 1; k <= 100; ++k) {
    for (int d = 0; d < 15; ++d) {
      m.Load("R", Tuple{partner++, k}, 1);
      m.Load("S", Tuple{k, partner++}, 1);
    }
  }
  m.Preprocess();
  ASSERT_GT(m.engine().theta(), 15.0);
  ASSERT_LT(m.engine().theta(), 200.0);

  // Heavy updates: O(1) steps (aux views + indicator lookups only).
  ResetCounters();
  for (Value i = 0; i < 50; ++i) {
    m.Update("R", Tuple{5000000 + i, 0}, 1);
    m.Update("R", Tuple{5000000 + i, 0}, -1);
  }
  const double heavy_steps = static_cast<double>(AggregateCounters().delta_steps) / 100.0;

  // Light updates: O(degree of the sibling) = O(θ) steps.
  ResetCounters();
  for (Value i = 0; i < 50; ++i) {
    m.Update("R", Tuple{6000000 + i, 1 + (i % 100)}, 1);
    m.Update("R", Tuple{6000000 + i, 1 + (i % 100)}, -1);
  }
  const double light_steps = static_cast<double>(AggregateCounters().delta_steps) / 100.0;

  EXPECT_LT(heavy_steps, 10.0);
  EXPECT_GT(light_steps, 14.0);   // ≈ sibling degree 15
  EXPECT_LT(light_steps, 60.0);
  EXPECT_EQ(m.FullCheck(), "");
}

TEST(CostModelTest, IndicatorFlipCostsConstant) {
  // Flipping a key between heavy and light support triggers O(1) extra
  // steps per affected view, not a recomputation (minor rebalancing moves
  // the σ_key tuples, which is O(θ) amortized).
  MirroredEngine m("Q(A) = R(A, B), S(B)", Opts(0.5));
  for (Value i = 0; i < 1000; ++i) m.Load("R", Tuple{i, 50000 + i}, 1);
  m.Load("S", Tuple{7}, 1);
  m.Preprocess();
  ResetCounters();
  m.Update("R", Tuple{1, 7}, 1);  // first R-tuple with B=7: All_B flips on
  const auto first = AggregateCounters().delta_steps;
  m.Update("R", Tuple{2, 7}, 1);  // no support change
  const auto second = AggregateCounters().delta_steps - first;
  EXPECT_LT(first, 40u);
  EXPECT_LT(second, 40u);
  EXPECT_EQ(m.FullCheck(), "");
}

}  // namespace
}  // namespace ivme
