// The OMv reduction of Proposition 10, run as a correctness test: encode an
// n×n Boolean matrix M in R(A,B); for each round, encode the vector v in
// S(B) and check that enumerating Q(A) = R(A,B), S(B) yields exactly the
// support of M·v. (The lower bound itself is a conjecture; what we verify
// is that the engine implements the reduction's interface faithfully, at
// the ε = 1/2 point the paper proves weakly Pareto optimal.)
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

class OmvRoundTest : public ::testing::TestWithParam<double> {};

TEST_P(OmvRoundTest, MatrixVectorRounds) {
  const double eps = GetParam();
  const int n = 24;
  Rng rng(2024);

  // Random Boolean matrix.
  std::vector<std::vector<bool>> matrix(static_cast<size_t>(n),
                                        std::vector<bool>(static_cast<size_t>(n)));
  for (auto& row : matrix) {
    for (size_t j = 0; j < row.size(); ++j) row[j] = rng.Chance(0.3);
  }

  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  EngineOptions opts;
  opts.mode = EvalMode::kDynamic;
  opts.epsilon = eps;
  Engine engine(q, opts);
  engine.Preprocess();  // empty database: O(1) preprocessing

  // Load the matrix through updates (the reduction's first phase).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (matrix[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        ASSERT_TRUE(engine.ApplyUpdate("R", Tuple{i, j}, 1));
      }
    }
  }

  // n rounds of vectors.
  std::vector<bool> current(static_cast<size_t>(n), false);
  for (int round = 0; round < n; ++round) {
    // Swap in the new vector as single-tuple updates.
    std::vector<bool> next(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) next[static_cast<size_t>(j)] = rng.Chance(0.4);
    for (int j = 0; j < n; ++j) {
      if (current[static_cast<size_t>(j)] && !next[static_cast<size_t>(j)]) {
        ASSERT_TRUE(engine.ApplyUpdate("S", Tuple{j}, -1));
      } else if (!current[static_cast<size_t>(j)] && next[static_cast<size_t>(j)]) {
        ASSERT_TRUE(engine.ApplyUpdate("S", Tuple{j}, 1));
      }
    }
    current = next;

    // Expected support of M·v.
    std::set<Value> expected;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (matrix[static_cast<size_t>(i)][static_cast<size_t>(j)] &&
            current[static_cast<size_t>(j)]) {
          expected.insert(i);
          break;
        }
      }
    }
    std::set<Value> actual;
    auto it = engine.Enumerate();
    Tuple t;
    Mult mult = 0;
    while (it->Next(&t, &mult)) {
      EXPECT_GT(mult, 0);
      EXPECT_TRUE(actual.insert(t[0]).second) << "duplicate row " << t[0];
    }
    ASSERT_EQ(actual, expected) << "round " << round << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, OmvRoundTest, ::testing::Values(0.0, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(OmvTest, FullMatrixProductViaExample28) {
  // The Q(A,C) variant multiplies two matrices outright.
  const int n = 16;
  Rng rng(7);
  std::vector<std::vector<int>> a(static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(n), 0));
  std::vector<std::vector<int>> b = a;
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions opts;
  opts.mode = EvalMode::kDynamic;
  opts.epsilon = 0.5;
  Engine engine(q, opts);
  engine.Preprocess();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Chance(0.35)) {
        a[static_cast<size_t>(i)][static_cast<size_t>(j)] = 1;
        ASSERT_TRUE(engine.ApplyUpdate("R", Tuple{i, j}, 1));
      }
      if (rng.Chance(0.35)) {
        b[static_cast<size_t>(i)][static_cast<size_t>(j)] = 1;
        ASSERT_TRUE(engine.ApplyUpdate("S", Tuple{i, j}, 1));
      }
    }
  }
  // The result multiplicity of (i,k) is the integer matrix product entry.
  const auto result = engine.EvaluateToMap();
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      int expected = 0;
      for (int j = 0; j < n; ++j) {
        expected += a[static_cast<size_t>(i)][static_cast<size_t>(j)] *
                    b[static_cast<size_t>(j)][static_cast<size_t>(k)];
      }
      const auto it = result.find(Tuple{i, k});
      const Mult actual = it == result.end() ? 0 : it->second;
      EXPECT_EQ(actual, expected) << "cell (" << i << "," << k << ")";
    }
  }
}

}  // namespace
}  // namespace ivme
