// Concurrent-read torture tests: reader threads enumerate pinned snapshots
// of a serving ShardedCatalog while the writer keeps applying randomized
// batches. The consistency oracle is differential prefix replay: the writer
// mirrors every batch into a plain (non-serving) QueryCatalog and records
// that reference's full result map under the epoch the batch published.
// Every result set a reader observes at pinned epoch e must then be
// *exactly* the reference state at batch boundary e — not a mix of
// boundaries, not a mid-batch state — no matter how far the writer has
// advanced, including across major rebalances and while an incremental
// migration frontier is mid-flight.
//
// The sweep covers K ∈ {1, 2, 3} shards × {amortized, incremental} major
// rebalancing, 40 randomized batch rounds each (240 total), with two
// scanning readers plus one "stalled" reader that pins a single epoch
// across the rest of the run and re-verifies it at the end. Run under TSan:
// any unsynchronized reader/writer access is a hard failure. IVME_SEED
// offsets every seed (tests/support/seed.h).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/catalog.h"
#include "src/core/sharded_catalog.h"
#include "src/data/dictionary.h"
#include "src/data/value.h"
#include "tests/support/catalog.h"
#include "tests/support/seed.h"

namespace ivme {
namespace {

using testing::MustParse;

EngineOptions Options(RebalanceMode mode) {
  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  options.rebalance_mode = mode;
  return options;
}

/// Valid mixed stream over R, S (arity 2): deletes only target live
/// tuples, with an insert bias so the database grows and crosses major-
/// rebalance thresholds repeatedly.
class StreamGen {
 public:
  explicit StreamGen(uint64_t seed) : rng_(seed) {}

  Update Next(Value domain) {
    const char* names[] = {"R", "S"};
    const size_t r = rng_.Below(2);
    auto& live = live_[r];
    if (!live.empty() && rng_.Chance(0.35)) {
      const size_t pick = rng_.Below(live.size());
      Update u{names[r], live[pick], -1};
      live[pick] = live.back();
      live.pop_back();
      return u;
    }
    Tuple t{rng_.Range(0, domain), rng_.Range(0, domain)};
    live.push_back(t);
    return Update{names[r], std::move(t), 1};
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  std::vector<Tuple> live_[2];
};

/// One torture configuration: K shards, one rebalance mode, `rounds`
/// batches, `num_readers` scanning readers plus one stalled reader.
void RunTorture(uint64_t seed, size_t num_shards, RebalanceMode mode, int rounds,
                int num_readers) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" + std::to_string(num_shards) +
               " mode=" + (mode == RebalanceMode::kIncremental ? "incremental" : "amortized"));

  // Shardable query set with consistent routing (root B: R column 1, S
  // column 0). K == 1 additionally registers a self-join so reader paths
  // cross mirror storage.
  std::vector<std::pair<std::string, std::string>> queries = {
      {"join", "Q(A, C) = R(A, B), S(B, C)"},
      {"semi", "Q(B) = R(A, B), S(B, C)"},
  };
  if (num_shards == 1) queries.push_back({"mirror", "Q(A) = R(A, B), R(A, B2)"});

  ShardedCatalogOptions opt;
  opt.num_shards = num_shards;
  ShardedCatalog catalog(opt);
  QueryCatalog reference;  // plain, never serving: the prefix-replay oracle
  std::vector<std::string> names;
  for (const auto& [name, text] : queries) {
    std::string why;
    ASSERT_TRUE(catalog.RegisterQuery(name, MustParse(text), Options(mode), &why)) << why;
    reference.RegisterQuery(name, MustParse(text), Options(mode));
    names.push_back(name);
  }
  catalog.EnableServing();
  catalog.Preprocess();
  reference.Preprocess();

  std::mutex mu;
  std::condition_variable cv;
  std::map<Epoch, std::vector<QueryResult>> refs;  // epoch -> per-query result
  bool done = false;

  // The post-setup state is the first observable snapshot.
  {
    std::vector<QueryResult> initial;
    for (const auto& name : names) initial.push_back(reference.EvaluateToMap(name));
    std::lock_guard<std::mutex> lock(mu);
    refs[catalog.epoch_manager().published()] = std::move(initial);
  }

  // Scanning readers: pin, look up the reference for exactly that epoch
  // (waiting if the writer has published but not yet recorded it), and
  // demand equality. Occasionally re-read after yielding so the comparison
  // also runs once the writer has moved several epochs ahead.
  auto scan_reader = [&](uint64_t rseed) {
    Rng rng(rseed);
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (done) break;
      }
      ReadSnapshot snap = catalog.AcquireSnapshot();
      const Epoch e = snap.epoch();
      std::vector<QueryResult> expected;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return refs.count(e) != 0 || done; });
        auto it = refs.find(e);
        if (it == refs.end()) {
          ADD_FAILURE() << "published epoch " << e << " was never recorded";
          break;
        }
        expected = it->second;
      }
      for (size_t q = 0; q < names.size(); ++q) {
        EXPECT_EQ(catalog.EvaluateToMapAt(names[q], e), expected[q])
            << "query " << names[q] << " at epoch " << e;
      }
      if (rng.Chance(0.3)) {
        std::this_thread::yield();  // let the writer lap this pin
        EXPECT_EQ(catalog.EvaluateToMapAt(names[0], e), expected[0])
            << "repeatable read of " << names[0] << " at epoch " << e;
      }
    }
  };

  // Stalled reader: once a third of the run has passed, pin ONE epoch and
  // hold it until the writer is done — across every major rebalance and
  // mid-migration boundary that follows — then re-verify the snapshot.
  auto stalled_reader = [&] {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return refs.size() > static_cast<size_t>(rounds) / 3 || done;
      });
    }
    ReadSnapshot snap = catalog.AcquireSnapshot();
    const Epoch e = snap.epoch();
    std::vector<QueryResult> expected;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return refs.count(e) != 0 || done; });
      auto it = refs.find(e);
      if (it == refs.end()) {
        ADD_FAILURE() << "published epoch " << e << " was never recorded";
        return;
      }
      expected = it->second;
    }
    for (size_t q = 0; q < names.size(); ++q) {
      EXPECT_EQ(catalog.EvaluateToMapAt(names[q], e), expected[q])
          << "stalled pin, first read, query " << names[q] << " at epoch " << e;
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
    }
    for (size_t q = 0; q < names.size(); ++q) {
      EXPECT_EQ(catalog.EvaluateToMapAt(names[q], e), expected[q])
          << "stalled pin, end-of-run re-read, query " << names[q] << " at epoch " << e;
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < num_readers; ++i) {
    readers.emplace_back(scan_reader, seed ^ (0xBEEF0000ull + static_cast<uint64_t>(i)));
  }
  readers.emplace_back(stalled_reader);

  // Writer: randomized batches, each mirrored into the reference and its
  // result recorded under the epoch the serving catalog just published.
  StreamGen gen(seed);
  for (int round = 0; round < rounds; ++round) {
    UpdateBatch batch;
    const size_t n = 1 + gen.rng().Below(10);
    for (size_t i = 0; i < n; ++i) batch.push_back(gen.Next(/*domain=*/8));
    catalog.ApplyBatch(batch);
    reference.ApplyBatch(batch);
    std::vector<QueryResult> result;
    for (const auto& name : names) result.push_back(reference.EvaluateToMap(name));
    {
      std::lock_guard<std::mutex> lock(mu);
      refs[catalog.epoch_manager().published()] = std::move(result);
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  for (auto& reader : readers) reader.join();

  // The workload grows from empty, so the size invariant must have forced
  // at least one major rebalance per shard-0 query.
  size_t majors = 0, slices = 0;
  for (size_t s = 0; s < catalog.num_shards(); ++s) {
    const QueryStats stats = catalog.FindQuery(names[0], s)->GetStats();
    majors += stats.major_rebalances;
    slices += stats.rebalance_slices;
  }
  EXPECT_GT(majors, 0u);
  if (mode == RebalanceMode::kIncremental) EXPECT_GT(slices, 0u);

  // Quiescent differential: the serving catalog's live state equals the
  // reference, and every per-query invariant holds.
  for (const auto& name : names) {
    EXPECT_EQ(catalog.EvaluateToMap(name), reference.EvaluateToMap(name)) << name;
  }
  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;

  // With every pin dropped, two more boundaries drain all retired memory.
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  EXPECT_EQ(catalog.RetiredObjects(), 0u);
}

using TortureParam = std::tuple<size_t, RebalanceMode>;

class ConcurrentReadTortureTest : public ::testing::TestWithParam<TortureParam> {};

TEST_P(ConcurrentReadTortureTest, SnapshotsMatchSomeBatchBoundary) {
  const size_t shards = std::get<0>(GetParam());
  const RebalanceMode mode = std::get<1>(GetParam());
  const uint64_t base = testing::SeedBase(0x70A70000ull);
  const uint64_t seed =
      base + 100 * shards + (mode == RebalanceMode::kIncremental ? 7 : 0);
  RunTorture(seed, shards, mode, /*rounds=*/40, /*num_readers=*/2);
}

std::string TortureName(const ::testing::TestParamInfo<TortureParam>& info) {
  const size_t shards = std::get<0>(info.param);
  const RebalanceMode mode = std::get<1>(info.param);
  return "K" + std::to_string(shards) +
         (mode == RebalanceMode::kIncremental ? "_incremental" : "_amortized");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentReadTortureTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{3}),
                       ::testing::Values(RebalanceMode::kAmortized,
                                         RebalanceMode::kIncremental)),
    TortureName);

// Registration and teardown while readers are live: RegisterQuery /
// DropQuery quiesce the epoch gate, so a reader that raced its pin either
// completes before the structural change or pins after it — never during.
TEST(ConcurrentReadTest, StructuralChangesQuiesceReaders) {
  const uint64_t seed = testing::SeedBase(0x70A7BEEFull);
  ShardedCatalogOptions opt;
  opt.num_shards = 1;
  ShardedCatalog catalog(opt);
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(RebalanceMode::kAmortized)));
  catalog.EnableServing();
  catalog.Preprocess();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    Rng rng(seed);
    while (!done.load()) {
      ReadSnapshot snap = catalog.AcquireSnapshot();
      const QueryResult a = catalog.EvaluateToMapAt("join", snap.epoch());
      std::this_thread::yield();
      const QueryResult b = catalog.EvaluateToMapAt("join", snap.epoch());
      EXPECT_EQ(a, b);
    }
  });

  StreamGen gen(seed);
  for (int round = 0; round < 30; ++round) {
    UpdateBatch batch;
    for (size_t i = 0; i < 6; ++i) batch.push_back(gen.Next(/*domain=*/6));
    catalog.ApplyBatch(batch);
    if (round == 10) {
      ASSERT_TRUE(catalog.RegisterQuery("late", MustParse("Q(B) = R(A, B), S(B, C)"),
                                        Options(RebalanceMode::kAmortized)));
    }
    if (round == 20) EXPECT_TRUE(catalog.DropQuery("late"));
  }
  done.store(true);
  reader.join();

  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
}

// Dictionary interning under live snapshot readers: the writer keeps
// interning fresh strings and inserting tuples tagged with them while two
// readers race the intern frontier. Intern publishes string-before-size
// (release store), so a reader may see Lookup(id) == nullptr for an id it
// was not handed through a result — but never a torn string. Any tagged
// value visible in a pinned snapshot was interned before the batch that
// carried it published, so it must always resolve. Run under TSan: the
// lock-free Lookup against the interning writer is the race surface.
TEST(ConcurrentReadTest, InterningRacesSnapshotReaders) {
  const uint64_t seed = testing::SeedBase(0xD1C70000ull);
  ShardedCatalogOptions opt;
  opt.num_shards = 2;
  ShardedCatalog catalog(opt);
  ASSERT_TRUE(catalog.RegisterQuery("join", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                    Options(RebalanceMode::kAmortized)));
  catalog.EnableServing();
  catalog.Preprocess();
  const std::shared_ptr<StringDictionary>& dict = catalog.dictionary();

  std::atomic<bool> done{false};

  // Result reader: resolves every tagged value its snapshot exposes back
  // to the deterministic string for its id.
  std::thread result_reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      ReadSnapshot snap = catalog.AcquireSnapshot();
      const QueryResult result = catalog.EvaluateToMapAt("join", snap.epoch());
      for (const auto& [tuple, mult] : result) {
        for (const Value v : tuple) {
          if (!IsDictValue(v)) continue;
          const std::string* s = dict->Lookup(v);
          ASSERT_NE(s, nullptr) << "snapshot-visible id must resolve";
          EXPECT_EQ(*s, "w" + std::to_string(DictIdOf(v)));
          EXPECT_EQ(dict->FormatValue(v), "\"" + *s + "\"");
        }
      }
    }
  });

  // Probing reader: hammers ids around the frontier without any pin.
  // nullptr is fine for an id not yet published; a non-null result must
  // already be a complete string.
  std::thread probe_reader([&] {
    Rng rng(seed ^ 0x9999ull);
    uint64_t resolved = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint32_t id = static_cast<uint32_t>(rng.Below(2048));
      const std::string* s = dict->Lookup(MakeDictValue(id));
      if (s != nullptr) {
        ++resolved;
        EXPECT_EQ(*s, "w" + std::to_string(id));
      }
    }
    EXPECT_GT(resolved, 0u);
  });

  // Writer: fresh interns every round, tagged values on both a root-side
  // column and the payloads so they route through both shards.
  Rng rng(seed);
  uint32_t next = 0;
  for (int round = 0; round < 300; ++round) {
    UpdateBatch batch;
    for (int i = 0; i < 4; ++i) {
      const Value tagged = dict->Intern("w" + std::to_string(next));
      ASSERT_EQ(tagged, MakeDictValue(next));
      ++next;
      const Value join_key = static_cast<Value>(rng.Below(16));
      batch.push_back(Update{"R", Tuple({tagged, join_key}), 1});
      batch.push_back(Update{"S", Tuple({join_key, tagged}), 1});
    }
    catalog.ApplyBatch(batch);
  }
  done.store(true, std::memory_order_release);
  result_reader.join();
  probe_reader.join();

  std::string error;
  EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
  EXPECT_EQ(dict->size(), static_cast<size_t>(next));
}

}  // namespace
}  // namespace ivme
