// Tests for the data model: schemas, tuples, projections.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/data/schema.h"
#include "src/data/tuple.h"

namespace ivme {
namespace {

TEST(SchemaTest, BasicAccessors) {
  Schema s({3, 1, 7});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s.PositionOf(1), 1);
  EXPECT_EQ(s.PositionOf(9), -1);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(0));
}

TEST(SchemaTest, SetOperationsPreserveLeftOrder) {
  Schema a({3, 1, 7, 2});
  Schema b({2, 7, 9});
  EXPECT_EQ(a.Intersect(b), Schema({7, 2}));
  EXPECT_EQ(a.Minus(b), Schema({3, 1}));
  EXPECT_EQ(a.Union(b), Schema({3, 1, 7, 2, 9}));
}

TEST(SchemaTest, ContainmentAndSetEquality) {
  Schema a({1, 2, 3});
  Schema b({3, 1, 2});
  Schema c({1, 2});
  EXPECT_TRUE(a.SameSet(b));
  EXPECT_FALSE(a == b);  // order-sensitive equality
  EXPECT_TRUE(a.ContainsAll(c));
  EXPECT_FALSE(c.ContainsAll(a));
  EXPECT_TRUE(Schema().ContainsAll(Schema()));
  EXPECT_TRUE(a.ContainsAll(Schema()));
}

TEST(SchemaTest, EmptySchema) {
  Schema e;
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.SameSet(Schema::Empty()));
  EXPECT_EQ(e.Intersect(Schema({1})), Schema());
  EXPECT_EQ(e.Union(Schema({1})), Schema({1}));
}

TEST(SchemaTest, AppendMaintainsOrder) {
  Schema s;
  s.Append(5);
  s.Append(2);
  EXPECT_EQ(s, Schema({5, 2}));
}

TEST(ProjectionTest, PositionsAndProjection) {
  Schema super({10, 20, 30, 40});
  Schema sub({30, 10});
  const auto pos = ProjectionPositions(super, sub);
  EXPECT_EQ(pos, (std::vector<int>{2, 0}));
  // (a, b, c, d)[(C, A)] = (c, a): the paper's restriction example.
  Tuple t{100, 200, 300, 400};
  EXPECT_EQ(ProjectTuple(t, pos), (Tuple{300, 100}));
}

TEST(ProjectionTest, EmptyProjection) {
  Tuple t{1, 2, 3};
  EXPECT_EQ(ProjectTuple(t, {}), Tuple{});
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{1, 2, 3};
  Tuple b{1, 2, 3};
  Tuple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Different arities never compare equal.
  EXPECT_NE(Tuple({1}), Tuple({1, 1}));
}

TEST(TupleTest, Concat) {
  EXPECT_EQ(ConcatTuples(Tuple{1, 2}, Tuple{3}), (Tuple{1, 2, 3}));
  EXPECT_EQ(ConcatTuples(Tuple{}, Tuple{3}), (Tuple{3}));
  EXPECT_EQ(ConcatTuples(Tuple{3}, Tuple{}), (Tuple{3}));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple({1, -2}).ToString(), "(1, -2)");
  EXPECT_EQ(Tuple{}.ToString(), "()");
}

// --- small-buffer / cached-hash paths ---

TEST(TupleTest, InlineToHeapTransitionPreservesValues) {
  Tuple t;
  for (Value v = 0; v < 32; ++v) {
    t.PushBack(v * 11);
    ASSERT_EQ(t.size(), static_cast<size_t>(v + 1));
    for (Value u = 0; u <= v; ++u) ASSERT_EQ(t[static_cast<size_t>(u)], u * 11);
  }
}

TEST(TupleTest, EqualityAcrossInlineAndHeapRepresentations) {
  // `heap` crosses kInlineCapacity and comes back down to the same values
  // via mutation; it must still equal (and hash equal to) an inline tuple.
  Tuple inline_rep{1, 2, 3};
  Tuple heap_rep;
  for (Value v : {1, 2, 3, 4, 5, 6, 7, 8}) heap_rep.PushBack(v);
  heap_rep.Clear();
  for (Value v : {1, 2, 3}) heap_rep.PushBack(v);
  EXPECT_EQ(inline_rep, heap_rep);
  EXPECT_EQ(inline_rep.Hash(), heap_rep.Hash());
  EXPECT_FALSE(inline_rep < heap_rep);
  EXPECT_FALSE(heap_rep < inline_rep);
}

TEST(TupleTest, HashInvalidatedByPushBack) {
  Tuple t{1, 2};
  const uint64_t h2 = t.Hash();
  t.PushBack(3);
  EXPECT_NE(t.Hash(), h2);
  EXPECT_EQ(t.Hash(), Tuple({1, 2, 3}).Hash());
}

TEST(TupleTest, HashInvalidatedByClear) {
  Tuple t{1, 2, 3};
  (void)t.Hash();
  t.Clear();
  EXPECT_EQ(t.Hash(), Tuple{}.Hash());
}

TEST(TupleTest, HashInvalidatedByMutableSubscript) {
  Tuple t{1, 2, 3};
  (void)t.Hash();
  t[1] = 99;
  EXPECT_EQ(t, (Tuple{1, 99, 3}));
  EXPECT_EQ(t.Hash(), Tuple({1, 99, 3}).Hash());
}

TEST(TupleTest, CopyAndMovePreserveValuesAcrossRepresentations) {
  Tuple small{1, 2};
  Tuple big{1, 2, 3, 4, 5, 6};
  Tuple small_copy = small;
  Tuple big_copy = big;
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);
  Tuple small_moved = std::move(small_copy);
  Tuple big_moved = std::move(big_copy);
  EXPECT_EQ(small_moved, small);
  EXPECT_EQ(big_moved, big);
  // Assignment in both directions between representations.
  small_moved = big;
  EXPECT_EQ(small_moved, big);
  big_moved = small;
  EXPECT_EQ(big_moved, small);
}

TEST(TupleTest, AssignProjectionReusesScratch) {
  Tuple scratch;
  Tuple src{10, 20, 30, 40, 50};
  scratch.AssignProjection(src, {4, 0});
  EXPECT_EQ(scratch, (Tuple{50, 10}));
  const uint64_t h = scratch.Hash();
  EXPECT_EQ(h, Tuple({50, 10}).Hash());
  scratch.AssignProjection(src, {1, 2, 3});
  EXPECT_EQ(scratch, (Tuple{20, 30, 40}));
  EXPECT_EQ(scratch.Hash(), Tuple({20, 30, 40}).Hash());
}

TEST(TupleTest, LexicographicOrderMatchesReference) {
  const std::vector<Tuple> tuples = {Tuple{},       Tuple{1},      Tuple{1, 1},
                                     Tuple{1, 2},   Tuple{2},      Tuple{2, 0, 0, 0, 0},
                                     Tuple{2, 0, 1}};
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = 0; j < tuples.size(); ++j) {
      EXPECT_EQ(tuples[i] < tuples[j], i < j)
          << tuples[i].ToString() << " vs " << tuples[j].ToString();
    }
  }
}

TEST(SchemaTest, ToStringUsesVariableNames) {
  Schema s({0, 2});
  std::vector<std::string> names = {"A", "B", "C"};
  EXPECT_EQ(s.ToString(names), "(A, C)");
}

}  // namespace
}  // namespace ivme
