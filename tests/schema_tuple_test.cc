// Tests for the data model: schemas, tuples, projections.
#include <gtest/gtest.h>

#include "src/data/schema.h"
#include "src/data/tuple.h"

namespace ivme {
namespace {

TEST(SchemaTest, BasicAccessors) {
  Schema s({3, 1, 7});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s.PositionOf(1), 1);
  EXPECT_EQ(s.PositionOf(9), -1);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(0));
}

TEST(SchemaTest, SetOperationsPreserveLeftOrder) {
  Schema a({3, 1, 7, 2});
  Schema b({2, 7, 9});
  EXPECT_EQ(a.Intersect(b), Schema({7, 2}));
  EXPECT_EQ(a.Minus(b), Schema({3, 1}));
  EXPECT_EQ(a.Union(b), Schema({3, 1, 7, 2, 9}));
}

TEST(SchemaTest, ContainmentAndSetEquality) {
  Schema a({1, 2, 3});
  Schema b({3, 1, 2});
  Schema c({1, 2});
  EXPECT_TRUE(a.SameSet(b));
  EXPECT_FALSE(a == b);  // order-sensitive equality
  EXPECT_TRUE(a.ContainsAll(c));
  EXPECT_FALSE(c.ContainsAll(a));
  EXPECT_TRUE(Schema().ContainsAll(Schema()));
  EXPECT_TRUE(a.ContainsAll(Schema()));
}

TEST(SchemaTest, EmptySchema) {
  Schema e;
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.SameSet(Schema::Empty()));
  EXPECT_EQ(e.Intersect(Schema({1})), Schema());
  EXPECT_EQ(e.Union(Schema({1})), Schema({1}));
}

TEST(SchemaTest, AppendMaintainsOrder) {
  Schema s;
  s.Append(5);
  s.Append(2);
  EXPECT_EQ(s, Schema({5, 2}));
}

TEST(ProjectionTest, PositionsAndProjection) {
  Schema super({10, 20, 30, 40});
  Schema sub({30, 10});
  const auto pos = ProjectionPositions(super, sub);
  EXPECT_EQ(pos, (std::vector<int>{2, 0}));
  // (a, b, c, d)[(C, A)] = (c, a): the paper's restriction example.
  Tuple t{100, 200, 300, 400};
  EXPECT_EQ(ProjectTuple(t, pos), (Tuple{300, 100}));
}

TEST(ProjectionTest, EmptyProjection) {
  Tuple t{1, 2, 3};
  EXPECT_EQ(ProjectTuple(t, {}), Tuple{});
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{1, 2, 3};
  Tuple b{1, 2, 3};
  Tuple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Different arities never compare equal.
  EXPECT_NE(Tuple({1}), Tuple({1, 1}));
}

TEST(TupleTest, Concat) {
  EXPECT_EQ(ConcatTuples(Tuple{1, 2}, Tuple{3}), (Tuple{1, 2, 3}));
  EXPECT_EQ(ConcatTuples(Tuple{}, Tuple{3}), (Tuple{3}));
  EXPECT_EQ(ConcatTuples(Tuple{3}, Tuple{}), (Tuple{3}));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple({1, -2}).ToString(), "(1, -2)");
  EXPECT_EQ(Tuple{}.ToString(), "()");
}

TEST(SchemaTest, ToStringUsesVariableNames) {
  Schema s({0, 2});
  std::vector<std::string> names = {"A", "B", "C"};
  EXPECT_EQ(s.ToString(names), "(A, C)");
}

}  // namespace
}  // namespace ivme
