// Tests for canonical variable orders and the free-top transformation
// (Definition 13, Example 14, Appendix B.1 / Figure 25).
#include <gtest/gtest.h>

#include <functional>

#include "src/query/classify.h"
#include "src/query/variable_order.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

// The child variable names of a variable node, sorted.
std::vector<std::string> ChildVarNames(const ConjunctiveQuery& q, const VONode* node) {
  std::vector<std::string> names;
  for (const auto& child : node->children) {
    if (child->IsVariable()) names.push_back(q.var_name(child->var));
  }
  std::sort(names.begin(), names.end());
  return names;
}

// Number of atom children of a node.
int AtomChildCount(const VONode* node) {
  int count = 0;
  for (const auto& child : node->children) {
    if (child->IsAtom()) ++count;
  }
  return count;
}

TEST(CanonicalVOTest, ValidAndCanonicalForWholeCatalog) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const auto vo = VariableOrder::Canonical(q);
    EXPECT_TRUE(vo.IsValidFor(q)) << entry.label << ": " << vo.ToString(q);
    EXPECT_TRUE(vo.IsCanonicalFor(q)) << entry.label << ": " << vo.ToString(q);
  }
}

TEST(CanonicalVOTest, Example14Shape) {
  // A - {B - {C - R(ABC); D - S(ABD)}; E - {F - T(AEF); G - U(AEG)}}.
  const auto q = testing::MustParse("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)");
  const auto vo = VariableOrder::Canonical(q);
  ASSERT_EQ(vo.roots().size(), 1u);
  const VONode* a = vo.roots()[0].get();
  ASSERT_TRUE(a->IsVariable());
  EXPECT_EQ(q.var_name(a->var), "A");
  EXPECT_EQ(ChildVarNames(q, a), (std::vector<std::string>{"B", "E"}));
  const VONode* b = vo.FindVar(q.FindVar("B"));
  EXPECT_EQ(ChildVarNames(q, b), (std::vector<std::string>{"C", "D"}));
  const VONode* e = vo.FindVar(q.FindVar("E"));
  EXPECT_EQ(ChildVarNames(q, e), (std::vector<std::string>{"F", "G"}));
  // Atoms hang below their lowest variables.
  const VONode* c = vo.FindVar(q.FindVar("C"));
  ASSERT_EQ(c->children.size(), 1u);
  EXPECT_TRUE(c->children[0]->IsAtom());
  EXPECT_EQ(q.atom(static_cast<size_t>(c->children[0]->atom_index)).relation, "R");
}

TEST(CanonicalVOTest, Example18Shape) {
  // Figure 9 (left): A - {B - {C - R(ABC); D - S(ABD)}; E - T(AE)}.
  const auto q = testing::MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)");
  const auto vo = VariableOrder::Canonical(q);
  ASSERT_EQ(vo.roots().size(), 1u);
  const VONode* a = vo.roots()[0].get();
  EXPECT_EQ(q.var_name(a->var), "A");
  EXPECT_EQ(ChildVarNames(q, a), (std::vector<std::string>{"B", "E"}));
  const VONode* e = vo.FindVar(q.FindVar("E"));
  EXPECT_EQ(AtomChildCount(e), 1);
}

TEST(CanonicalVOTest, ChainOfSharedVariables) {
  // Both A and B occur in all atoms: they form a chain in id order.
  const auto q = testing::MustParse("Q(A, B, C) = R(A, B), S(A, B, C)");
  const auto vo = VariableOrder::Canonical(q);
  ASSERT_EQ(vo.roots().size(), 1u);
  const VONode* a = vo.roots()[0].get();
  EXPECT_EQ(q.var_name(a->var), "A");
  ASSERT_EQ(a->children.size(), 1u);
  const VONode* b = a->children[0].get();
  ASSERT_TRUE(b->IsVariable());
  EXPECT_EQ(q.var_name(b->var), "B");
  // R(A,B) hangs below B; S continues below C.
  EXPECT_EQ(AtomChildCount(b), 1);
}

TEST(CanonicalVOTest, CartesianProductGivesForest) {
  const auto q = testing::MustParse("Q(A, B) = R(A), S(B)");
  const auto vo = VariableOrder::Canonical(q);
  EXPECT_EQ(vo.roots().size(), 2u);
}

TEST(CanonicalVOTest, AnnotationsExample18) {
  const auto q = testing::MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)");
  const auto vo = VariableOrder::Canonical(q);
  const VONode* b = vo.FindVar(q.FindVar("B"));
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->anc.SameSet(Schema({q.FindVar("A")})));
  EXPECT_TRUE(b->dep.SameSet(Schema({q.FindVar("A")})));
  // Subtree of B contains C, D and atoms R, S.
  EXPECT_TRUE(b->subtree_vars.Contains(q.FindVar("C")));
  EXPECT_TRUE(b->subtree_vars.Contains(q.FindVar("D")));
  EXPECT_EQ(b->subtree_atoms.size(), 2u);
  const VONode* c = vo.FindVar(q.FindVar("C"));
  EXPECT_TRUE(c->anc.SameSet(Schema({q.FindVar("A"), q.FindVar("B")})));
}

TEST(FreeTopTest, ValidAndFreeTopForWholeCatalog) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const auto vo = VariableOrder::FreeTopOfCanonical(q);
    EXPECT_TRUE(vo.IsValidFor(q)) << entry.label << ": " << vo.ToString(q);
    EXPECT_TRUE(vo.IsFreeTop(q)) << entry.label << ": " << vo.ToString(q);
  }
}

TEST(FreeTopTest, CanonicalOfQHierarchicalIsAlreadyFreeTop) {
  // δ0-hierarchical queries admit canonical free-top variable orders.
  for (const auto& entry : testing::HierarchicalCatalog()) {
    if (!entry.q_hierarchical) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_TRUE(VariableOrder::Canonical(q).IsFreeTop(q)) << entry.label;
  }
}

TEST(FreeTopTest, Example28MovesFreeVariablesUp) {
  // Canonical: B - {A - R; C - S}; free-top: chain A - C - B with both atoms
  // below B.
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  const auto canonical = VariableOrder::Canonical(q);
  ASSERT_EQ(canonical.roots().size(), 1u);
  EXPECT_EQ(q.var_name(canonical.roots()[0]->var), "B");
  EXPECT_FALSE(canonical.IsFreeTop(q));

  const auto ft = VariableOrder::FreeTopOfCanonical(q);
  ASSERT_EQ(ft.roots().size(), 1u);
  const VONode* a = ft.roots()[0].get();
  EXPECT_EQ(q.var_name(a->var), "A");
  ASSERT_EQ(a->children.size(), 1u);
  const VONode* c = a->children[0].get();
  EXPECT_EQ(q.var_name(c->var), "C");
  ASSERT_EQ(c->children.size(), 1u);
  const VONode* b = c->children[0].get();
  EXPECT_EQ(q.var_name(b->var), "B");
  EXPECT_EQ(AtomChildCount(b), 2);
  // dep(B) = {A, C}: B depends on A through R and on C through S.
  EXPECT_TRUE(b->dep.SameSet(Schema({q.FindVar("A"), q.FindVar("C")})));
}

TEST(FreeTopTest, Figure25Transformation) {
  // The appendix's worked example. Free variables {A,B,D,G,J,K,L,M}.
  const auto q = testing::MustParse(
      "Q(A, B, D, G, J, K, L, M) = "
      "R1(A, B, D, H), R2(A, B, D, I), R3(A, B, E, J), R4(A, B, E, K), "
      "R5(A, C, F, L), R6(A, C, F, M), R7(A, C, G, N), R8(A, C, G, O)");
  ASSERT_TRUE(IsHierarchical(q));
  const auto canonical = VariableOrder::Canonical(q);
  EXPECT_TRUE(canonical.IsCanonicalFor(q));
  EXPECT_FALSE(canonical.IsFreeTop(q));

  const auto ft = VariableOrder::FreeTopOfCanonical(q);
  EXPECT_TRUE(ft.IsValidFor(q));
  EXPECT_TRUE(ft.IsFreeTop(q));

  // hBF = {E, C}: E's subtree becomes J - K - E, C's becomes G - L - M - C.
  const VONode* e = ft.FindVar(q.FindVar("E"));
  ASSERT_NE(e, nullptr);
  ASSERT_NE(e->parent, nullptr);
  EXPECT_EQ(q.var_name(e->parent->var), "K");
  EXPECT_EQ(q.var_name(e->parent->parent->var), "J");
  const VONode* c = ft.FindVar(q.FindVar("C"));
  EXPECT_EQ(q.var_name(c->parent->var), "M");
  EXPECT_EQ(q.var_name(c->parent->parent->var), "L");
  EXPECT_EQ(q.var_name(c->parent->parent->parent->var), "G");
  // F keeps N and O's former atoms below C; N, O stay below C.
  const VONode* n = ft.FindVar(q.FindVar("N"));
  EXPECT_TRUE(n->anc.Contains(q.FindVar("C")));
}

TEST(FreeTopTest, BoundOnlySubtreesUntouched) {
  // No free variable below the bound variables: canonical order unchanged.
  const auto q = testing::MustParse("Q() = R(A, B), S(B)");
  const auto canonical = VariableOrder::Canonical(q);
  const auto ft = VariableOrder::FreeTopOfCanonical(q);
  EXPECT_EQ(canonical.ToString(q), ft.ToString(q));
}

TEST(FreeTopTest, DepSetsAreSubsetsOfAncestors) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const auto vo = VariableOrder::FreeTopOfCanonical(q);
    std::function<void(const VONode*)> visit = [&](const VONode* node) {
      EXPECT_TRUE(node->anc.ContainsAll(node->dep)) << entry.label;
      for (const auto& child : node->children) visit(child.get());
    };
    for (const auto& root : vo.roots()) visit(root.get());
  }
}

TEST(VOToStringTest, RendersStructure) {
  const auto q = testing::MustParse("Q(A) = R(A, B), S(B)");
  const auto vo = VariableOrder::Canonical(q);
  EXPECT_EQ(vo.ToString(q), "B - {A - {R(A, B)}; S(B)}");
}

}  // namespace
}  // namespace ivme
