// Per-relation mutability declarations (static / insert_only / dynamic):
//   - parse/ToString round-trips of the query-text prefixes, including the
//     conflicting-declaration rejection;
//   - structured rejection at every write surface — Engine, QueryCatalog,
//     ShardedCatalog (K ∈ {1,2,3}), DurableCatalog — with Status::Rejected
//     for data-plane refusals (static write, insert-only delete) and
//     Status::Error for structural misuse (unknown relation), plus
//     whole-batch atomicity: a batch touching a static relation applies
//     nothing anywhere;
//   - RegisterQuery refusing a declaration that disagrees with the live
//     store attachment, with the reason naming both sides;
//   - differential fuzz: engines with mixed declarations run the same valid
//     stream (singles and random chunks) as an all-dynamic twin, both
//     checked against brute force and against each other;
//   - crash-point recovery fuzz: declarations survive WAL replay and
//     snapshot restore — the recovered catalog still rejects static writes
//     and insert-only deletes, and matches a never-crashed reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/rng.h"
#include "src/core/durable_catalog.h"
#include "src/core/engine.h"
#include "src/core/sharded_catalog.h"
#include "tests/support/catalog.h"
#include "tests/support/durability.h"
#include "tests/support/mirror.h"
#include "tests/support/seed.h"

namespace ivme {
namespace {

using testing::DiffLogicalState;
using testing::MirroredEngine;
using testing::MustParse;
using testing::TempDir;

std::vector<std::pair<Tuple, Mult>> SortedEngineResult(const Engine& engine) {
  std::vector<std::pair<Tuple, Mult>> result;
  auto it = engine.Enumerate();
  Tuple t;
  Mult m = 0;
  while (it->Next(&t, &m)) result.emplace_back(t, m);
  std::sort(result.begin(), result.end());
  return result;
}

// ---------------------------------------------------------------- parsing

TEST(MutabilityParse, PrefixesRoundTrip) {
  const auto q = ConjunctiveQuery::Parse("Q(A, C) = static R(A, B), insert_only S(B, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->MutabilityOf("R"), Mutability::kStatic);
  EXPECT_EQ(q->MutabilityOf("S"), Mutability::kInsertOnly);

  const std::string text = q->ToString();
  EXPECT_NE(text.find("static R("), std::string::npos) << text;
  EXPECT_NE(text.find("insert_only S("), std::string::npos) << text;

  const auto reparsed = ConjunctiveQuery::Parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->ToString(), text);
  EXPECT_EQ(reparsed->MutabilityOf("R"), Mutability::kStatic);
  EXPECT_EQ(reparsed->MutabilityOf("S"), Mutability::kInsertOnly);
}

TEST(MutabilityParse, DefaultIsDynamicWithNoPrefix) {
  const auto q = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->MutabilityOf("R"), Mutability::kDynamic);
  EXPECT_EQ(q->MutabilityOf("S"), Mutability::kDynamic);
  EXPECT_EQ(q->ToString().find("static"), std::string::npos);
  EXPECT_EQ(q->ToString().find("insert_only"), std::string::npos);
}

TEST(MutabilityParse, DeclarationCoversRepeatedOccurrences) {
  // One non-default declaration for a repeated symbol applies to all of its
  // occurrences; an undeclared occurrence is not a conflict.
  const auto q = ConjunctiveQuery::Parse("Q(A) = static R(A, B), R(B, C)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->MutabilityOf("R"), Mutability::kStatic);
}

TEST(MutabilityParse, ConflictingDeclarationsRejected) {
  EXPECT_FALSE(
      ConjunctiveQuery::Parse("Q(A) = static R(A, B), insert_only R(B, C)").has_value());
}

// ------------------------------------------------------- engine rejection

TEST(MutabilityRejection, EngineLayer) {
  const auto q = MustParse("Q(A, C) = insert_only R(A, B), static S(B, C)");
  EngineOptions options;
  options.epsilon = 0.5;
  Engine engine(q, options);
  engine.LoadTuple("R", Tuple({1, 2}), 1);
  engine.LoadTuple("S", Tuple({2, 3}), 1);
  engine.Preprocess();

  // Static write and insert-only delete: data-plane refusals.
  Status s = engine.TryApplyUpdate("S", Tuple({7, 8}), 1);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.rejected()) << s.message();
  s = engine.TryApplyUpdate("R", Tuple({1, 2}), -1);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.rejected()) << s.message();

  // Unknown relation: structural misuse, not a rejection.
  s = engine.TryApplyUpdate("T", Tuple({1, 2}), 1);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.rejected()) << s.message();

  // Valid inserts still flow; the plain wrapper refuses without aborting.
  EXPECT_TRUE(engine.TryApplyUpdate("R", Tuple({9, 2}), 1).ok());
  EXPECT_FALSE(engine.ApplyUpdate("S", Tuple({7, 8}), 1));
  EXPECT_FALSE(engine.ApplyUpdate("R", Tuple({9, 2}), -1));

  // A batch touching the static relation is refused atomically: no entry
  // applies, not even the valid ones.
  const auto before = SortedEngineResult(engine);
  UpdateBatch batch = {{"R", Tuple({11, 2}), 1}, {"S", Tuple({2, 12}), 1}};
  Engine::BatchResult result;
  s = engine.TryApplyBatch(batch, &result);
  EXPECT_TRUE(s.rejected()) << s.message();
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(SortedEngineResult(engine), before);
  const auto wrapped = engine.ApplyBatch(batch);
  EXPECT_EQ(wrapped.applied, 0u);
  EXPECT_EQ(wrapped.rejected, batch.size());
  EXPECT_EQ(SortedEngineResult(engine), before);
}

TEST(MutabilityRejection, EngineOptionsOverride) {
  // Programmatic overrides declare mutability without query-text prefixes.
  const auto q = MustParse("Q(A, C) = R(A, B), S(B, C)");
  EngineOptions options;
  options.epsilon = 0.5;
  options.mutability = {{"S", Mutability::kStatic}, {"R", Mutability::kInsertOnly}};
  Engine engine(q, options);
  engine.LoadTuple("R", Tuple({1, 2}), 1);
  engine.LoadTuple("S", Tuple({2, 3}), 1);
  engine.Preprocess();
  EXPECT_TRUE(engine.TryApplyUpdate("S", Tuple({4, 5}), 1).rejected());
  EXPECT_TRUE(engine.TryApplyUpdate("R", Tuple({1, 2}), -1).rejected());
  EXPECT_TRUE(engine.TryApplyUpdate("R", Tuple({6, 7}), 1).ok());
}

// ------------------------------------------------------ catalog rejection

TEST(MutabilityRejection, QueryCatalogLayer) {
  QueryCatalog catalog;
  EngineOptions options;
  options.epsilon = 0.5;
  ASSERT_NE(catalog.RegisterQuery("Q", MustParse("Q(A, C) = R(A, B), static S(B, C)"),
                                  options),
            nullptr);
  catalog.LoadTuple("R", Tuple({1, 2}), 1);
  catalog.LoadTuple("S", Tuple({2, 3}), 1);
  catalog.Preprocess();

  EXPECT_TRUE(catalog.TryApplyUpdate("S", Tuple({4, 5}), 1).rejected());
  EXPECT_TRUE(catalog.CheckWritable("S", 1).rejected());
  EXPECT_FALSE(catalog.ApplyUpdate("S", Tuple({4, 5}), 1));
  EXPECT_TRUE(catalog.TryApplyUpdate("R", Tuple({5, 2}), 1).ok());

  Update updates[2] = {{"R", Tuple({6, 2}), 1}, {"S", Tuple({2, 7}), 1}};
  BatchResult result;
  EXPECT_TRUE(catalog.TryApplyBatch(updates, 2, &result).rejected());
  EXPECT_EQ(result.applied, 0u);
  const BatchResult wrapped = catalog.ApplyBatch(updates, 2);
  EXPECT_EQ(wrapped.applied, 0u);
  EXPECT_EQ(wrapped.rejected, 2u);
}

TEST(MutabilityRejection, ShardedCatalogLayerAndConflict) {
  for (size_t num_shards : {1u, 2u, 3u}) {
    SCOPED_TRACE("K=" + std::to_string(num_shards));
    ShardedCatalogOptions catalog_options;
    catalog_options.num_shards = num_shards;
    ShardedCatalog catalog(catalog_options);
    EngineOptions options;
    options.epsilon = 0.5;
    std::string why;
    ASSERT_TRUE(catalog.RegisterQuery("Q", MustParse("Q(A, C) = R(A, B), static S(B, C)"),
                                      options, &why))
        << why;

    // A second query disagreeing with the live attachment is refused, and
    // the reason names both declarations.
    EXPECT_FALSE(catalog.RegisterQuery("P", MustParse("P(B) = S(B, C)"), options, &why));
    EXPECT_NE(why.find("static"), std::string::npos) << why;
    // An agreeing declaration registers fine.
    ASSERT_TRUE(
        catalog.RegisterQuery("P", MustParse("P(B) = static S(B, C)"), options, &why))
        << why;

    catalog.LoadTuple("R", Tuple({1, 2}), 1);
    catalog.LoadTuple("S", Tuple({2, 3}), 1);
    catalog.Preprocess();

    EXPECT_TRUE(catalog.TryApplyUpdate("S", Tuple({4, 5}), 1).rejected());
    EXPECT_FALSE(catalog.ApplyUpdate("S", Tuple({4, 5}), 1));
    EXPECT_TRUE(catalog.TryApplyUpdate("R", Tuple({5, 2}), 1).ok());

    UpdateBatch batch = {{"R", Tuple({6, 2}), 1}, {"S", Tuple({2, 7}), 1}};
    BatchResult result;
    EXPECT_TRUE(catalog.TryApplyBatch(batch, &result).rejected());
    EXPECT_EQ(result.applied, 0u);
    const BatchResult wrapped = catalog.ApplyBatch(batch);
    EXPECT_EQ(wrapped.applied, 0u);
    EXPECT_EQ(wrapped.rejected, batch.size());
    std::string error;
    EXPECT_TRUE(catalog.CheckInvariants(&error)) << error;
  }
}

// ------------------------------------------------------- differential fuzz

const char* Prefix(Mutability m) {
  switch (m) {
    case Mutability::kStatic:
      return "static ";
    case Mutability::kInsertOnly:
      return "insert_only ";
    case Mutability::kDynamic:
      return "";
  }
  return "";
}

struct FuzzPlan {
  Mutability r = Mutability::kDynamic;
  Mutability s = Mutability::kDynamic;
  std::string declared_text;
  EngineOptions options;
};

FuzzPlan DrawPlan(Rng& rng) {
  const Mutability kinds[] = {Mutability::kDynamic, Mutability::kInsertOnly,
                              Mutability::kStatic};
  FuzzPlan plan;
  plan.r = kinds[rng.Below(3)];
  plan.s = kinds[rng.Below(3)];
  plan.declared_text = std::string("Q(A, C) = ") + Prefix(plan.r) + "R(A, B), " +
                       Prefix(plan.s) + "S(B, C)";
  plan.options.epsilon = std::vector<double>{0.0, 0.5, 1.0}[rng.Below(3)];
  plan.options.mode = EvalMode::kDynamic;
  plan.options.rebalance_mode =
      rng.Chance(0.5) ? RebalanceMode::kIncremental : RebalanceMode::kAmortized;
  return plan;
}

Tuple DrawTuple(Rng& rng, Value domain) {
  return Tuple({static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))),
                static_cast<Value>(rng.Below(static_cast<uint64_t>(domain)))});
}

/// A random valid update against the declarations: inserts everywhere
/// writable, deletes only of live tuples of fully-dynamic relations (each
/// live entry is consumed when drawn, so a stream built from this is valid
/// in any chunking — in-batch insert/delete pairs net to zero, never below).
struct StreamState {
  std::vector<std::pair<std::string, Tuple>> live_dynamic;
};

ivme::Update DrawUpdate(Rng& rng, const FuzzPlan& plan, Value domain, StreamState& state) {
  std::vector<std::pair<std::string, Mutability>> writable;
  if (plan.r != Mutability::kStatic) writable.emplace_back("R", plan.r);
  if (plan.s != Mutability::kStatic) writable.emplace_back("S", plan.s);
  const auto& [relation, mutability] = writable[rng.Below(writable.size())];
  if (mutability == Mutability::kDynamic && !state.live_dynamic.empty() &&
      rng.Chance(0.35)) {
    const size_t pick = rng.Below(state.live_dynamic.size());
    ivme::Update u{state.live_dynamic[pick].first, state.live_dynamic[pick].second, -1};
    state.live_dynamic[pick] = state.live_dynamic.back();
    state.live_dynamic.pop_back();
    return u;
  }
  ivme::Update u{relation, DrawTuple(rng, domain), 1};
  if (mutability == Mutability::kDynamic) state.live_dynamic.emplace_back(u.relation, u.tuple);
  return u;
}

void RunEngineFuzz(uint64_t seed) {
  Rng rng(seed);
  const FuzzPlan plan = DrawPlan(rng);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + plan.declared_text);

  MirroredEngine declared(plan.declared_text, plan.options);
  MirroredEngine all_dynamic("Q(A, C) = R(A, B), S(B, C)", plan.options);

  const Value domain = 2 + static_cast<Value>(rng.Below(6));
  for (int i = static_cast<int>(rng.Below(40)); i > 0; --i) {
    const std::string relation = rng.Chance(0.5) ? "R" : "S";
    const Tuple t = DrawTuple(rng, domain);
    declared.Load(relation, t, 1);
    all_dynamic.Load(relation, t, 1);
  }
  declared.Preprocess();
  all_dynamic.Preprocess();

  if (plan.r == Mutability::kStatic && plan.s == Mutability::kStatic) {
    // Fully static query: nothing is writable; the preprocessed state is
    // the whole story.
    EXPECT_EQ(declared.FullCheck(), "");
    EXPECT_EQ(SortedEngineResult(declared.engine()),
              SortedEngineResult(all_dynamic.engine()));
    return;
  }

  StreamState state;
  for (int step = 0; step < 50; ++step) {
    if (rng.Chance(0.4)) {
      UpdateBatch batch;
      const size_t size = 1 + rng.Below(8);
      for (size_t i = 0; i < size; ++i) {
        batch.push_back(DrawUpdate(rng, plan, domain, state));
      }
      declared.UpdateBatch(batch);
      all_dynamic.UpdateBatch(batch);
    } else {
      const ivme::Update u = DrawUpdate(rng, plan, domain, state);
      EXPECT_TRUE(declared.Update(u.relation, u.tuple, u.mult));
      EXPECT_TRUE(all_dynamic.Update(u.relation, u.tuple, u.mult));
    }
    if (step % 10 == 9) {
      ASSERT_EQ(declared.FullCheck(), "") << "step " << step;
    }
  }
  EXPECT_EQ(declared.FullCheck(), "");
  EXPECT_EQ(all_dynamic.FullCheck(), "");
  EXPECT_EQ(SortedEngineResult(declared.engine()), SortedEngineResult(all_dynamic.engine()));
}

class MutabilityFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MutabilityFuzzTest, DeclaredMatchesAllDynamic) {
  for (uint64_t scenario = 0; scenario < 3; ++scenario) {
    RunEngineFuzz(testing::SeedBase(0x3C0DE000ull) +
                  1000 * static_cast<uint64_t>(GetParam()) + scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutabilityFuzzTest, ::testing::Range(0, 15));

void RunShardedFuzz(uint64_t seed) {
  Rng rng(seed);
  const FuzzPlan plan = DrawPlan(rng);
  const size_t num_shards = 1 + rng.Below(3);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " K=" + std::to_string(num_shards) +
               " query=" + plan.declared_text);

  ShardedCatalogOptions catalog_options;
  catalog_options.num_shards = num_shards;
  ShardedCatalog declared(catalog_options);
  ShardedCatalog all_dynamic(catalog_options);
  std::string why;
  ASSERT_TRUE(
      declared.RegisterQuery("Q", MustParse(plan.declared_text), plan.options, &why))
      << why;
  ASSERT_TRUE(all_dynamic.RegisterQuery("Q", MustParse("Q(A, C) = R(A, B), S(B, C)"),
                                        plan.options, &why))
      << why;

  const Value domain = 2 + static_cast<Value>(rng.Below(6));
  for (int i = static_cast<int>(rng.Below(40)); i > 0; --i) {
    const std::string relation = rng.Chance(0.5) ? "R" : "S";
    const Tuple t = DrawTuple(rng, domain);
    declared.LoadTuple(relation, t, 1);
    all_dynamic.LoadTuple(relation, t, 1);
  }
  declared.Preprocess();
  all_dynamic.Preprocess();

  if (plan.r == Mutability::kStatic && plan.s == Mutability::kStatic) {
    EXPECT_EQ(DiffLogicalState(declared, all_dynamic), "");
    return;
  }

  StreamState state;
  for (int step = 0; step < 40; ++step) {
    if (rng.Chance(0.4)) {
      UpdateBatch batch;
      const size_t size = 1 + rng.Below(8);
      for (size_t i = 0; i < size; ++i) {
        batch.push_back(DrawUpdate(rng, plan, domain, state));
      }
      const BatchResult a = declared.ApplyBatch(batch);
      const BatchResult b = all_dynamic.ApplyBatch(batch);
      EXPECT_EQ(a.applied, b.applied);
      EXPECT_EQ(a.rejected, 0u);
    } else {
      const ivme::Update u = DrawUpdate(rng, plan, domain, state);
      EXPECT_TRUE(declared.ApplyUpdate(u.relation, u.tuple, u.mult));
      EXPECT_TRUE(all_dynamic.ApplyUpdate(u.relation, u.tuple, u.mult));
    }
  }
  EXPECT_EQ(DiffLogicalState(declared, all_dynamic), "");
  std::string error;
  EXPECT_TRUE(declared.CheckInvariants(&error)) << error;
}

class MutabilityShardedFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MutabilityShardedFuzzTest, DeclaredMatchesAllDynamic) {
  for (uint64_t scenario = 0; scenario < 2; ++scenario) {
    RunShardedFuzz(testing::SeedBase(0x3C0DE100ull) +
                   1000 * static_cast<uint64_t>(GetParam()) + scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutabilityShardedFuzzTest, ::testing::Range(0, 10));

// --------------------------------------------------- durability & recovery

/// The recovered catalog must still enforce the declarations — the spec
/// text round-trips through the WAL (kRegister payload) and snapshots.
void ExpectDeclarationsEnforced(DurableCatalog& catalog) {
  EXPECT_TRUE(catalog.TryApplyUpdate("S", Tuple({1, 2}), 1).rejected());
  EXPECT_TRUE(catalog.TryApplyUpdate("R", Tuple({1, 2}), -1).rejected());
  UpdateBatch batch = {{"R", Tuple({3, 4}), 1}, {"S", Tuple({4, 5}), 1}};
  BatchResult result;
  EXPECT_TRUE(catalog.TryApplyBatch(batch, &result).rejected());
  EXPECT_EQ(result.applied, 0u);
}

void RunRecoveryScenario(uint64_t seed) {
  Rng rng(seed);
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  SCOPED_TRACE("seed=" + std::to_string(seed));

  FaultInjector injector;
  FaultInjector reference_injector;  // never armed
  DurabilityOptions durability;
  durability.fsync = FsyncPolicy::kBatch;
  durability.background_checkpoint = false;
  durability.injector = &injector;
  DurabilityOptions reference_options;
  reference_options.injector = &reference_injector;
  ShardedCatalogOptions catalog_options;
  catalog_options.num_shards = 1 + rng.Below(3);

  auto durable = std::make_unique<DurableCatalog>(catalog_options, durability);
  DurableCatalog reference(catalog_options, reference_options);

  EngineOptions options;
  options.epsilon = std::vector<double>{0.0, 0.5, 1.0}[rng.Below(3)];
  options.mode = EvalMode::kDynamic;
  std::string why;
  const auto q = MustParse("Q(A, C) = insert_only R(A, B), static S(B, C)");
  ASSERT_TRUE(durable->RegisterQuery("Q", q, options, &why)) << why;
  ASSERT_TRUE(reference.RegisterQuery("Q", q, options, &why)) << why;
  const Value domain = 2 + static_cast<Value>(rng.Below(5));
  for (int i = static_cast<int>(rng.Below(25)); i > 0; --i) {
    const std::string rel = rng.Chance(0.5) ? "R" : "S";
    const Tuple t = DrawTuple(rng, domain);
    ASSERT_TRUE(durable->TryLoadTuple(rel, t, 1).ok());
    ASSERT_TRUE(reference.TryLoadTuple(rel, t, 1).ok());
  }
  durable->Preprocess();
  reference.Preprocess();
  ASSERT_TRUE(durable->AttachDir(dir.path()).ok());

  // One crash point over a stream of valid inserts plus rejected attempts.
  // Rejections are refused before the WAL append, so they never consume a
  // crash hit and never appear in the reference.
  const char* const points[] = {"wal:before_append", "wal:append_torn", "wal:before_sync",
                                "catalog:after_wal_append", "catalog:after_apply"};
  const std::string point = points[rng.Below(5)];
  injector.Reset();
  injector.Arm(point, 1 + rng.Below(15));
  const bool in_flight_durable =
      point == "wal:before_sync" || point == "catalog:after_wal_append" ||
      point == "catalog:after_apply";

  for (int step = 0; step < 30 && !injector.crashed(); ++step) {
    if (rng.Chance(0.2)) {
      // A rejected write (static insert or insert-only delete): refused up
      // front, so it produces no WAL traffic and consumes no crash hit.
      const bool was_crashed = injector.crashed();
      const Status refused =
          rng.Chance(0.5) ? durable->TryApplyUpdate("S", DrawTuple(rng, domain), 1)
                          : durable->TryApplyUpdate("R", DrawTuple(rng, domain), -1);
      EXPECT_TRUE(refused.rejected()) << "step " << step << ": " << refused.message();
      EXPECT_EQ(injector.crashed(), was_crashed);
      continue;
    }
    const Tuple t = DrawTuple(rng, domain);
    (void)durable->ApplyUpdate("R", t, 1);
    if (!injector.crashed() || in_flight_durable) {
      (void)reference.ApplyUpdate("R", t, 1);
    }
  }
  const std::string fired = injector.crash_point();
  durable.reset();  // the process "dies"; suppressed writes stay suppressed

  FaultInjector recovery_injector;
  DurabilityOptions recovery_options = durability;
  recovery_options.injector = &recovery_injector;
  Status status;
  auto recovered =
      DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), recovery_options, &status);
  ASSERT_NE(recovered, nullptr) << "point=" << fired << ": " << status.message();

  EXPECT_EQ(DiffLogicalState(recovered->catalog(), reference.catalog()), "")
      << "point=" << fired;
  // WAL replay rebuilt the query from its spec text: the declarations and
  // their enforcement came back with it.
  ExpectDeclarationsEnforced(*recovered);
  ASSERT_TRUE(recovered->ApplyUpdate("R", Tuple({1, 1}), 1));
  ASSERT_TRUE(reference.ApplyUpdate("R", Tuple({1, 1}), 1));

  // Snapshot restore: checkpoint, reopen, same enforcement.
  ASSERT_TRUE(recovered->Checkpoint().ok());
  recovered.reset();
  auto reopened =
      DurableCatalog::Open(dir.path(), ShardedCatalogOptions(), recovery_options, &status);
  ASSERT_NE(reopened, nullptr) << status.message();
  EXPECT_EQ(DiffLogicalState(reopened->catalog(), reference.catalog()), "")
      << "point=" << fired << " (post-checkpoint)";
  ExpectDeclarationsEnforced(*reopened);
  std::string error;
  EXPECT_TRUE(reopened->catalog().CheckInvariants(&error)) << error;
}

class MutabilityRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(MutabilityRecoveryTest, DeclarationsSurviveCrashes) {
  for (uint64_t scenario = 0; scenario < 2; ++scenario) {
    SCOPED_TRACE("scenario " + std::to_string(scenario));
    RunRecoveryScenario(testing::SeedBase(0x3C0DE200ull) +
                        1000 * static_cast<uint64_t>(GetParam()) + scenario);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutabilityRecoveryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace ivme
