// Tests for static and dynamic width (Definitions 15, 16) and the
// LP-verified Lemma 30 (integral = fractional edge covers for hierarchical
// queries).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/query/classify.h"
#include "src/query/edge_cover.h"
#include "src/query/width.h"
#include "tests/support/catalog.h"

namespace ivme {
namespace {

std::vector<Schema> AtomSchemas(const ConjunctiveQuery& q) {
  std::vector<Schema> atoms;
  for (const auto& atom : q.atoms()) atoms.push_back(atom.schema);
  return atoms;
}

TEST(WidthTest, CatalogStaticWidths) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(StaticWidth(q), entry.static_width) << entry.label;
  }
}

TEST(WidthTest, CatalogDynamicWidths) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(DynamicWidth(q), entry.dynamic_width) << entry.label;
  }
}

TEST(WidthTest, Proposition3FreeConnexHasStaticWidthOne) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    if (!entry.free_connex) continue;
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(StaticWidth(q), 1) << entry.label;
  }
}

TEST(WidthTest, Proposition8DynamicWidthEqualsDeltaRank) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    EXPECT_EQ(DynamicWidth(q), DeltaRank(q)) << entry.label;
  }
}

TEST(WidthTest, Proposition17DeltaIsWOrWMinusOne) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const int w = StaticWidth(q);
    const int d = DynamicWidth(q);
    EXPECT_TRUE(d == w || d == w - 1) << entry.label << " w=" << w << " d=" << d;
  }
}

TEST(WidthTest, CanonicalOrderCanBeWorseThanFreeTop) {
  // For Q(A,C) = R(A,B), S(B,C), the canonical order starts at bound B and
  // the free-top order is A-C-B; both have static width 2 here, but the
  // dynamic width of the canonical order is 1 while being non-free-top.
  const auto q = testing::MustParse("Q(A, C) = R(A, B), S(B, C)");
  const auto ft = VariableOrder::FreeTopOfCanonical(q);
  EXPECT_EQ(StaticWidthOf(q, ft), 2);
  EXPECT_EQ(DynamicWidthOf(q, ft), 1);
}

TEST(EdgeCoverLPTest, SimpleCovers) {
  // One atom covering everything.
  auto r = FractionalEdgeCoverLP({Schema({0, 1, 2})}, Schema({0, 2}));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-6);
  // Star with 3 leaves.
  r = FractionalEdgeCoverLP({Schema({0, 1}), Schema({0, 2}), Schema({0, 3})},
                            Schema({1, 2, 3}));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 3.0, 1e-6);
  // Empty target set.
  r = FractionalEdgeCoverLP({Schema({0})}, Schema());
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 0.0, 1e-6);
}

TEST(EdgeCoverLPTest, TriangleIsFractional) {
  // The triangle query's fractional edge cover number is 3/2 (strictly
  // below the integral 2) — the LP must find the fractional optimum.
  auto r = FractionalEdgeCoverLP({Schema({0, 1}), Schema({1, 2}), Schema({0, 2})},
                                 Schema({0, 1, 2}));
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.5, 1e-6);
}

TEST(EdgeCoverLPTest, InfeasibleWhenVariableUncovered) {
  EXPECT_FALSE(FractionalEdgeCoverLP({Schema({0})}, Schema({1})).has_value());
}

TEST(EdgeCoverLPTest, Lemma30IntegralEqualsFractionalOnCatalog) {
  for (const auto& entry : testing::HierarchicalCatalog()) {
    const auto q = testing::MustParse(entry.text);
    const auto atoms = AtomSchemas(q);
    // Check every subset of variables up to 2^12 subsets.
    const size_t nv = q.num_vars();
    if (nv > 12) continue;
    for (size_t mask = 0; mask < (size_t{1} << nv); ++mask) {
      std::vector<VarId> targets;
      for (size_t v = 0; v < nv; ++v) {
        if (mask & (size_t{1} << v)) targets.push_back(static_cast<VarId>(v));
      }
      const Schema target_schema{std::vector<VarId>(targets)};
      const auto lp = FractionalEdgeCoverLP(atoms, target_schema);
      ASSERT_TRUE(lp.has_value()) << entry.label;
      const int integral = MinAtomCover(atoms, target_schema);
      EXPECT_NEAR(*lp, integral, 1e-6)
          << entry.label << " targets=" << target_schema.ToString(q.var_names());
    }
  }
}

TEST(EdgeCoverLPTest, Lemma30OnRandomHierarchicalQueries) {
  // Random star/chain-shaped hierarchical queries.
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random hierarchy: a root variable 0; a few branches each with
    // a couple of nested variables; one atom per leaf path.
    std::vector<Schema> atoms;
    VarId next = 1;
    const int branches = static_cast<int>(rng.Range(1, 4));
    for (int b = 0; b < branches; ++b) {
      std::vector<VarId> path = {0};
      const int depth = static_cast<int>(rng.Range(1, 3));
      for (int d = 0; d < depth; ++d) path.push_back(next++);
      atoms.push_back(Schema(path));
      if (rng.Chance(0.5)) {
        // A second atom sharing a prefix of the path.
        std::vector<VarId> prefix(path.begin(),
                                  path.begin() + static_cast<long>(rng.Range(1, static_cast<int64_t>(path.size()))));
        prefix.push_back(next++);
        atoms.push_back(Schema(prefix));
      }
    }
    ASSERT_TRUE(IsHierarchical(atoms));
    std::vector<VarId> all;
    for (VarId v = 0; v < next; ++v) all.push_back(v);
    for (int sub = 0; sub < 20; ++sub) {
      std::vector<VarId> targets;
      for (VarId v : all) {
        if (rng.Chance(0.4)) targets.push_back(v);
      }
      const Schema target_schema{std::vector<VarId>(targets)};
      const auto lp = FractionalEdgeCoverLP(atoms, target_schema);
      ASSERT_TRUE(lp.has_value());
      EXPECT_NEAR(*lp, MinAtomCover(atoms, target_schema), 1e-6);
    }
  }
}

TEST(SimplexTest, SolvesTinyPrograms) {
  // min x1 + x2 s.t. x1 + x2 = 1 → 1.
  auto r = SolveSimplexEq({{1, 1}}, {1}, {1, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-9);
  // min 2x1 + x2, x1 + x2 = 3, x1 - x2 = 1 ... rewrite with x1 - x2 + 0 = 1
  // not expressible with b>=0 only if negative; use x1 = 2, x2 = 1 → 5.
  r = SolveSimplexEq({{1, 1}, {1, -1}}, {3, 1}, {2, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 5.0, 1e-9);
  // Infeasible: x1 = -1 impossible with x1 >= 0 … encode x1 + s = ... use
  // row 0*x = 1.
  r = SolveSimplexEq({{0.0}}, {1}, {1});
  EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace ivme
