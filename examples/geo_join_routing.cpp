// Skew-aware routing end to end on the geo-join FK workload: a
// dictionary-encoded geographic hierarchy (every key and name an interned
// string) served by a durable sharded catalog while a Zipf-skewed customer
// stream hammers a handful of hot cities.
//
//   Q(CI, CN, C, S, N, CU, UN) = geo(CI, C, S, N), city(CI, CN),
//                                customer(CI, CU, UN)
//
// The walk-through:
//   1. generate the hierarchy, interning every string through the
//      catalog's shared dictionary (workload::GenerateGeoJoin);
//   2. load + preprocess, enable serving, and stream customer inserts in
//      batches while a reader thread answers snapshot enumerations from
//      pinned epochs (never blocking ingest);
//   3. watch the two-level router: the SpaceSaving sketch spots the hot
//      city roots, promotes them into the overflow table, and the shard
//      imbalance stays bounded where pure hashing would pile one shard;
//   4. save the catalog (snapshot carries the dictionary), reopen it from
//      disk, and check the recovered result — ids, strings, and all — is
//      identical.
//
//   ./examples/geo_join_routing [customers] [shards]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/durable_catalog.h"
#include "src/workload/geo_join.h"

using namespace ivme;

int main(int argc, char** argv) {
  const size_t customers = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 24000;
  const size_t shards = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 4;

  ShardedCatalogOptions options;
  options.num_shards = shards;
  options.skew.enabled = true;   // two-level router: sketch + overflow table
  options.skew.min_total = 512;  // promote early enough for a demo-sized run
  auto durable = std::make_unique<DurableCatalog>(options, DurabilityOptions{});
  ShardedCatalog& catalog = durable->catalog();

  const auto query = *ConjunctiveQuery::Parse(workload::GeoJoinQueryText());
  std::printf("query: %s\n", query.ToString().c_str());
  std::string why;
  if (!catalog.RegisterQuery("geo", query, EngineOptions{}, &why)) {
    std::fprintf(stderr, "cannot register: %s\n", why.c_str());
    return 1;
  }

  // Generate straight into the catalog's dictionary: the relations below
  // carry the tagged ids this dictionary assigned.
  workload::GeoJoinConfig gen;
  gen.customers = customers;
  gen.zipf_skew = 1.2;  // ~1% of cities absorb most of the customer mass
  const workload::GeoJoinData data =
      workload::GenerateGeoJoin(gen, catalog.dictionary().get());
  const std::string hottest = *catalog.dictionary()->Lookup(data.hottest_city);
  std::printf("%zu cities, %zu customers, %zu interned strings; hottest city \"%s\" "
              "has %zu customers\n",
              data.num_cities, data.customer.size(), catalog.dictionary()->size(),
              hottest.c_str(), data.hottest_degree);

  // The balanced hierarchy loads up front; the skewed stream is customers.
  catalog.Load("geo", data.geo);
  catalog.Load("city", data.city);
  durable->Preprocess();
  catalog.EnableServing();
  catalog.ResetLoadStats();

  // Reader thread: pin the newest epoch, drain a snapshot prefix, release.
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0}, rows{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ReadSnapshot snap = catalog.AcquireSnapshot();
      auto it = catalog.EnumerateAt("geo", snap.epoch());
      Tuple t;
      Mult m = 0;
      size_t drained = 0;
      while (drained < 4000 && it->Next(&t, &m)) ++drained;
      rows.fetch_add(drained, std::memory_order_relaxed);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  UpdateBatch batch;
  for (size_t i = 0; i < data.customer.size(); ++i) {
    batch.push_back(Update{"customer", data.customer[i].first, data.customer[i].second});
    if (batch.size() == 128 || i + 1 == data.customer.size()) {
      durable->ApplyBatch(batch);
      batch.clear();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const LoadImbalance imbalance = catalog.ComputeImbalance();
  std::printf("\nstreamed %zu customer inserts across %zu shard(s); served %zu snapshot "
              "reads (%zu rows) concurrently\n",
              data.customer.size(), catalog.num_shards(), reads.load(), rows.load());
  std::printf("shard imbalance max/mean = %.2f (max %llu, mean %.0f routed tuples)\n",
              imbalance.max_mean, static_cast<unsigned long long>(imbalance.max_tuples),
              imbalance.mean_tuples);
  for (const OverflowEntry& e : catalog.OverflowEntries()) {
    std::printf("promoted hot city %s: %s tuples spread by non-root hash, other "
                "relations replicated (primary shard %zu)\n",
                catalog.dictionary()->FormatValue(e.root).c_str(),
                e.spread_relation.c_str(), e.primary);
  }

  const QueryResult before = catalog.EvaluateToMap("geo");
  std::printf("result: %zu tuples\n", before.size());
  std::string error;
  if (!catalog.CheckInvariants(&error)) {
    std::fprintf(stderr, "invariant violation: %s\n", error.c_str());
    return 1;
  }

  // Durability round-trip: the snapshot carries the full dictionary, so
  // the recovered catalog resolves the same tagged ids to the same names.
  char dir_template[] = "/tmp/ivme_geo_join_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "cannot create a temp dir\n");
    return 1;
  }
  Status status = durable->AttachDir(dir);
  if (status.ok()) status = durable->WaitForCheckpoint();
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.message().c_str());
    return 1;
  }
  catalog.DisableServing();
  durable.reset();  // "the process exits"

  auto reopened = DurableCatalog::Open(dir, ShardedCatalogOptions(), DurabilityOptions(),
                                       &status);
  if (reopened == nullptr) {
    std::fprintf(stderr, "reopen failed: %s\n", status.message().c_str());
    return 1;
  }
  const QueryResult after = reopened->catalog().EvaluateToMap("geo");
  const std::string* recovered_name =
      reopened->catalog().dictionary()->Lookup(data.hottest_city);
  if (after != before || recovered_name == nullptr || *recovered_name != hottest) {
    std::fprintf(stderr, "recovered state differs from the saved one\n");
    return 1;
  }
  std::printf("\nsaved to %s and reopened: %zu result tuples identical, hottest city "
              "still resolves to \"%s\"\n",
              dir, after.size(), recovered_name->c_str());
  std::printf("all invariants hold\n");
  return 0;
}
