// Batched ingestion walkthrough: load a base dataset, preprocess, then
// stream batched updates through Engine::ApplyBatch with enumeration
// interleaved between batches — the intended production loop for
// stream-style sources that deliver records in chunks.
//
//   ./build/batch_ingestion
//
// What to watch in the output:
//  - "net entries" per batch is usually well below the batch size: repeated
//    inserts of the same (hot) tuple merge into one weighted delta, and
//    insert/delete pairs inside a batch cancel before any view work.
//  - Rebalancing is deferred to batch boundaries, so a batch that grows the
//    database past the size invariant triggers at most one major rebalance
//    instead of thrashing partitions mid-batch.
#include <cstdio>

#include "src/core/engine.h"
#include "src/workload/generator.h"
#include "src/workload/update_stream.h"

using namespace ivme;

namespace {

size_t CountResult(const Engine& engine) {
  auto it = engine.Enumerate();
  Tuple t;
  Mult m = 0;
  size_t count = 0;
  while (it->Next(&t, &m)) ++count;
  return count;
}

}  // namespace

int main() {
  // The running example Q(A, C) = R(A, B), S(B, C) at ε = 0.5: amortized
  // O(N^0.5) single-tuple updates, O(N^0.5) enumeration delay.
  auto query = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  if (!query.has_value()) return 1;

  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  Engine engine(*query, options);

  // Base data: Zipf-skewed join keys, so both heavy and light partitions
  // are populated after preprocessing.
  const auto r = workload::ZipfTuples(2000, 2, 1, 200, 1.2, 50000, 1);
  const auto s = workload::ZipfTuples(2000, 2, 0, 200, 1.2, 50000, 2);
  for (const Tuple& t : r) engine.LoadTuple("R", t, 1);
  for (const Tuple& t : s) engine.LoadTuple("S", t, 1);
  engine.Preprocess();
  std::printf("loaded %zu base tuples, |Q| = %zu\n\n", engine.database_size(),
              CountResult(engine));

  // A batched update stream on R: 60% inserts / 40% deletes of live
  // tuples, with inserts drawn from a small hot domain (10 × 20 tuples,
  // landing on the heavy end of the Zipf keys) so that records inside a
  // batch consolidate: repeated hot inserts merge, hot insert/delete pairs
  // cancel.
  workload::BatchStreamOptions stream_options;
  stream_options.batch_count = 8;
  stream_options.batch_size = 256;
  stream_options.delete_ratio = 0.4;  // 0 would give the insert-only mode
  stream_options.seed = 7;
  const auto batches = workload::BatchedMixedStream(
      "R", r, stream_options,
      [](Rng& rng) { return Tuple{rng.Range(0, 10), rng.Range(0, 20)}; });

  // The ingestion loop: one ApplyBatch per chunk, enumeration interleaved.
  for (size_t b = 0; b < batches.size(); ++b) {
    const auto result = engine.ApplyBatch(batches[b]);
    std::printf("batch %zu: %4zu updates -> %4zu net entries (%zu rejected), "
                "N=%zu, |Q| = %zu\n",
                b, batches[b].size(), result.applied, result.rejected,
                engine.database_size(), CountResult(engine));
  }

  const auto stats = engine.GetStats();
  std::printf("\n%zu updates in %zu batches consolidated to %zu net entries "
              "(%.2fx); %zu minor / %zu major rebalances\n",
              stats.updates, stats.batches, stats.batch_net_entries,
              static_cast<double>(stats.updates) / static_cast<double>(stats.batch_net_entries),
              stats.minor_rebalances, stats.major_rebalances);

  std::string error;
  if (!engine.CheckInvariants(&error)) {
    std::printf("invariant violation: %s\n", error.c_str());
    return 1;
  }
  std::printf("all engine invariants hold\n");
  return 0;
}
