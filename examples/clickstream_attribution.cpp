// A realistic dynamic-evaluation scenario: ad-click attribution over a
// stream of impressions and conversions.
//
//   Impressions(User, Session, Ad)   — ad shown to a user in a session
//   Conversions(User, Session, Product) — purchase in the same session
//
//   Q(User, Ad, Product) = Impressions(User, Session, Ad),
//                          Conversions(User, Session, Product)
//
// The query is hierarchical but not q-hierarchical (the bound Session
// dominates the free Ad and Product), so constant-time updates with
// constant delay are impossible under OMv (it is δ1-hierarchical). IVM^ε
// keeps both sublinear: O(N^ε) amortized updates, O(N^{1−ε}) delay.
//
//   ./examples/clickstream_attribution [events]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/query/width.h"

using namespace ivme;

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 50000;
  const auto query = *ConjunctiveQuery::Parse(
      "Q(User, Ad, Product) = Impressions(User, Session, Ad), "
      "Conversions(User, Session, Product)");

  std::printf("query: %s\n", query.ToString().c_str());
  std::printf("hierarchical, δ%d-hierarchical, static width %d\n\n", DynamicWidth(query),
              StaticWidth(query));

  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  Engine engine(query, options);
  engine.Preprocess();  // start from an empty stream

  Rng rng(7);
  const Value users = 2000, sessions_per_user = 5, ads = 50, products = 40;
  auto session_of = [&](Value user, Value s) { return user * sessions_per_user + s; };

  // Feed the event stream; a few "viral" sessions become heavy (many ads
  // shown), exercising the skew-aware partitions.
  const auto start = std::chrono::steady_clock::now();
  for (int e = 0; e < events; ++e) {
    const Value user = rng.Range(0, users - 1);
    const Value session = session_of(user, rng.Range(0, sessions_per_user - 1));
    if (rng.Chance(0.7)) {
      const Value ad = rng.Chance(0.1) ? 0 : rng.Range(1, ads - 1);
      engine.ApplyUpdate("Impressions", Tuple{user, session, ad}, 1);
    } else {
      const Value product = rng.Range(0, products - 1);
      engine.ApplyUpdate("Conversions", Tuple{user, session, product}, 1);
    }
  }
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Attribution dashboard: how many (user, ad, product) attributions exist,
  // and which ad converts the most.
  size_t attributions = 0;
  std::vector<long long> per_ad(static_cast<size_t>(ads), 0);
  auto it = engine.Enumerate();
  Tuple t;
  Mult mult = 0;
  while (it->Next(&t, &mult)) {
    ++attributions;
    per_ad[static_cast<size_t>(t[1])] += mult;
  }
  Value best_ad = 0;
  for (Value a = 1; a < ads; ++a) {
    if (per_ad[static_cast<size_t>(a)] > per_ad[static_cast<size_t>(best_ad)]) best_ad = a;
  }

  const auto stats = engine.GetStats();
  std::printf("ingested %d events in %.2fs (%.1f us/update amortized)\n", events, ingest_s,
              ingest_s / events * 1e6);
  std::printf("distinct attributions: %zu; top ad: #%lld (weight %lld)\n", attributions,
              static_cast<long long>(best_ad),
              per_ad[static_cast<size_t>(best_ad)]);
  std::printf("N=%zu, θ=%.1f, %zu minor / %zu major rebalances, %zu view tuples\n",
              engine.database_size(), engine.theta(), stats.minor_rebalances,
              stats.major_rebalances, stats.view_tuples);

  // Sessions expire: retract one user's whole history and re-check.
  const Value victim = 17;
  for (Value s = 0; s < sessions_per_user; ++s) {
    const Value session = session_of(victim, s);
    // Delete whatever remains for this session (idempotent retraction loop).
    for (Value ad = 0; ad < ads; ++ad) {
      while (engine.ApplyUpdate("Impressions", Tuple{victim, session, ad}, -1)) {
      }
    }
    for (Value p = 0; p < products; ++p) {
      while (engine.ApplyUpdate("Conversions", Tuple{victim, session, p}, -1)) {
      }
    }
  }
  size_t victim_left = 0;
  it = engine.Enumerate();
  while (it->Next(&t, &mult)) {
    if (t[0] == victim) ++victim_left;
  }
  std::printf("after GDPR-style retraction of user %lld: %zu attributions remain for them\n",
              static_cast<long long>(victim), victim_left);
  return victim_left == 0 ? 0 : 1;
}
