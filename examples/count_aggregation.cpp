// Group-by COUNT aggregation through multiplicities — the ℤ-ring extension
// sketched in the paper's conclusion. The multiplicity the engine maintains
// for each result tuple *is* the aggregate
//
//   SELECT A, COUNT(*) FROM R NATURAL JOIN S GROUP BY A
//
// so a δ1-hierarchical counting dashboard gets O(N^ε) amortized updates and
// O(N^{1−ε}) delay — far below recomputation.
//
//   ./examples/count_aggregation
#include <cstdio>
#include <map>

#include "src/common/rng.h"
#include "src/core/engine.h"

using namespace ivme;

int main() {
  // Orders(Customer, Item), Stock(Item): count per customer how many of
  // their ordered items are stocked, weighted by stock multiplicity.
  const auto query = *ConjunctiveQuery::Parse("Q(Customer) = Orders(Customer, Item), Stock(Item)");
  EngineOptions options;
  options.epsilon = 0.5;
  options.mode = EvalMode::kDynamic;
  Engine engine(query, options);
  engine.Preprocess();

  Rng rng(11);
  const Value customers = 8, items = 12;
  std::map<std::pair<Value, Value>, long long> orders;  // reference counts
  std::map<Value, long long> stock;

  for (int step = 0; step < 400; ++step) {
    if (rng.Chance(0.6)) {
      const Value c = rng.Range(0, customers - 1), i = rng.Range(0, items - 1);
      engine.ApplyUpdate("Orders", Tuple{c, i}, 1);
      orders[{c, i}] += 1;
    } else if (rng.Chance(0.7)) {
      const Value i = rng.Range(0, items - 1);
      engine.ApplyUpdate("Stock", Tuple{i}, 1);
      stock[i] += 1;
    } else {
      const Value i = rng.Range(0, items - 1);
      if (engine.ApplyUpdate("Stock", Tuple{i}, -1)) stock[i] -= 1;
    }
  }

  std::printf("customer | stocked-order count (engine) | (reference)\n");
  bool all_match = true;
  std::map<Value, long long> reference;
  for (const auto& [key, count] : orders) {
    reference[key.first] += count * stock[key.second];
  }
  auto it = engine.Enumerate();
  Tuple t;
  Mult mult = 0;
  std::map<Value, long long> engine_counts;
  while (it->Next(&t, &mult)) engine_counts[t[0]] = mult;
  for (Value c = 0; c < customers; ++c) {
    const long long expected = reference.count(c) != 0 ? reference[c] : 0;
    const long long actual = engine_counts.count(c) != 0 ? engine_counts[c] : 0;
    if (expected != 0 || actual != 0) {
      std::printf("%8lld | %28lld | %lld%s\n", static_cast<long long>(c), actual, expected,
                  actual == expected ? "" : "   <-- MISMATCH");
    }
    if (actual != expected) all_match = false;
  }
  std::printf("\n%s\n", all_match ? "all aggregates maintained exactly."
                                  : "aggregate mismatch!");
  return all_match ? 0 : 1;
}
