// Example 28 as an application: integer matrix multiplication through the
// query Q(A, C) = R(A, B), S(B, C), where the multiplicity of (i, k) in the
// result is exactly (R·S)[i][k]. Sweeps ε to show the preprocessing/delay
// trade-off on the same input.
//
//   ./examples/matrix_multiply [n]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/engine.h"

using namespace ivme;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Value n = argc > 1 ? std::atoll(argv[1]) : 120;
  const auto query = *ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  Rng rng(42);

  // Two random 0/1 matrices with ~35% density, encoded as relations.
  std::vector<std::pair<Tuple, Mult>> r, s;
  for (Value i = 0; i < n; ++i) {
    for (Value j = 0; j < n; ++j) {
      if (rng.Chance(0.35)) r.push_back({Tuple{i, j}, 1});
      if (rng.Chance(0.35)) s.push_back({Tuple{i, j}, 1});
    }
  }
  std::printf("multiplying two %lldx%lld Boolean matrices (|R|=%zu, |S|=%zu, N=%zu)\n",
              static_cast<long long>(n), static_cast<long long>(n), r.size(), s.size(),
              r.size() + s.size());
  std::printf("%6s %14s %14s %14s %12s\n", "eps", "preprocess(s)", "enumerate(s)",
              "mean delay(us)", "result size");

  for (const double eps : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EngineOptions options;
    options.epsilon = eps;
    options.mode = EvalMode::kStatic;
    Engine engine(query, options);
    engine.Load("R", r);
    engine.Load("S", s);

    auto start = std::chrono::steady_clock::now();
    engine.Preprocess();
    const double preprocess_s = Seconds(start);

    start = std::chrono::steady_clock::now();
    auto it = engine.Enumerate();
    Tuple t;
    Mult mult = 0;
    size_t count = 0;
    long long checksum = 0;
    while (it->Next(&t, &mult)) {
      ++count;
      checksum += mult;  // Σ over cells of (R·S)[i][k]
    }
    const double enumerate_s = Seconds(start);
    std::printf("%6.2f %14.3f %14.3f %14.3f %12zu\n", eps, preprocess_s, enumerate_s,
                count > 0 ? enumerate_s / static_cast<double>(count) * 1e6 : 0.0, count);
    static long long reference = -1;
    if (reference < 0) reference = checksum;
    if (checksum != reference) {
      std::printf("checksum mismatch across eps!\n");
      return 1;
    }
  }
  std::printf("\nlower eps = cheaper preprocessing, slower enumeration; "
              "eps=1 materializes the full product.\n");
  return 0;
}
