// Fleet telemetry on the shared-nothing sharded engine: alert events from a
// device fleet ingested in batches across 4 shards, with enumerations
// interleaved between batches.
//
//   Alerts(Device, Alert)      — active alert codes per device
//   Location(Device, Region)   — device placement (slowly changing)
//   Online(Device)             — liveness set, joined as a unary filter
//
//   Q(Device, Region, Alert) = Alerts(Device, Alert),
//                              Location(Device, Region), Online(Device)
//
// Device is the canonical root variable — it occurs in every atom — so the
// engine hash-partitions all three relations on the Device value: each
// shard maintains its own view trees and thresholds over its slice of the
// fleet, batches split per shard and apply independently (concurrently on
// multi-core hosts), and because Device is free the shard results are
// disjoint and enumeration is a plain concatenation of the shard streams.
//
//   ./examples/sharded_telemetry [events]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/sharded_engine.h"
#include "src/workload/driver.h"

using namespace ivme;

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 30000;
  const auto query = *ConjunctiveQuery::Parse(
      "Q(Device, Region, Alert) = Alerts(Device, Alert), Location(Device, Region), "
      "Online(Device)");
  std::printf("query: %s\n", query.ToString().c_str());

  std::string why;
  if (!ShardedEngine::CanShard(query, &why)) {
    std::fprintf(stderr, "unexpectedly unshardable: %s\n", why.c_str());
    return 1;
  }

  ShardedEngineOptions options;
  options.engine.epsilon = 0.5;
  options.engine.mode = EvalMode::kDynamic;
  options.num_shards = 4;
  ShardedEngine engine(query, options);

  Rng rng(20260730);
  const Value devices = 2000, regions = 16, alert_codes = 40;

  // Fleet bootstrap before preprocessing: placement plus initial liveness.
  for (Value d = 0; d < devices; ++d) {
    engine.LoadTuple("Location", Tuple{d, d % regions}, 1);
    if (d % 5 != 0) engine.LoadTuple("Online", Tuple{d}, 1);
  }
  engine.Preprocess();

  // Batched ingestion: alert raise/clear events and occasional
  // relocations, cut into batches of 128. 2% of devices are chatty and
  // produce half the alerts (heavy Device keys).
  std::vector<Value> region_of(static_cast<size_t>(devices));
  for (Value d = 0; d < devices; ++d) region_of[static_cast<size_t>(d)] = d % regions;
  std::vector<workload::Batch> batches;
  std::vector<Tuple> live_alerts;
  UpdateBatch batch;
  for (int e = 0; e < events; ++e) {
    const Value device =
        rng.Chance(0.5) ? rng.Range(0, devices / 50) : rng.Range(0, devices - 1);
    if (!live_alerts.empty() && rng.Chance(0.35)) {
      const size_t pick = rng.Below(live_alerts.size());
      batch.push_back(Update{"Alerts", live_alerts[pick], -1});  // alert cleared
      live_alerts[pick] = live_alerts.back();
      live_alerts.pop_back();
    } else if (rng.Chance(0.04)) {
      const Value d = rng.Range(0, devices - 1);
      Value& region = region_of[static_cast<size_t>(d)];
      batch.push_back(Update{"Location", Tuple{d, region}, -1});  // relocation
      region = rng.Range(0, regions - 1);
      batch.push_back(Update{"Location", Tuple{d, region}, 1});
    } else {
      Tuple alert{device, rng.Range(0, alert_codes - 1)};
      live_alerts.push_back(alert);
      batch.push_back(Update{"Alerts", std::move(alert), 1});  // alert raised
    }
    if (batch.size() >= 128) {
      batches.push_back(std::move(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));

  // Interleave ingestion and enumeration: drain a dashboard snapshot every
  // 32 batches (merged across shards; disjoint, so no dedup pass).
  const auto start = std::chrono::steady_clock::now();
  workload::DriveStats drive;
  size_t snapshots = 0, last_count = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    const auto stats = workload::DriveBatches(engine, {batches[i]});
    drive.records += stats.records;
    drive.applied += stats.applied;
    drive.rejected += stats.rejected;
    drive.seconds += stats.seconds;
    if (i % 32 == 31) {
      auto it = engine.Enumerate();
      Tuple t;
      Mult m = 0;
      last_count = 0;
      while (it->Next(&t, &m)) ++last_count;
      ++snapshots;
    }
  }
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("ingested %zu events in %zu batches (%zu net entries, %zu rejected)\n",
              drive.records, batches.size(), drive.applied, drive.rejected);
  std::printf("%.0f events/s ingest; %zu dashboard snapshots, last with %zu rows; "
              "%.2fs total\n",
              drive.records / drive.seconds, snapshots, last_count, total_s);

  const auto stats = engine.GetStats();
  std::printf("\naggregate: N=%zu, %zu shards, %zu worker threads, view tuples %zu, "
              "minor/major rebalances %zu/%zu\n",
              engine.database_size(), engine.num_shards(), engine.num_threads(),
              stats.view_tuples, stats.minor_rebalances, stats.major_rebalances);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const Engine& shard = engine.shard(s);
    std::printf("  shard %zu: N=%zu M=%zu theta=%.1f view-tuples=%zu\n", s,
                shard.database_size(), shard.threshold_base(), shard.theta(),
                shard.GetStats().view_tuples);
  }

  std::string error;
  if (!engine.CheckInvariants(&error)) {
    std::fprintf(stderr, "invariant violation: %s\n", error.c_str());
    return 1;
  }
  std::printf("\nall invariants hold (per shard, plus routing)\n");
  return 0;
}
