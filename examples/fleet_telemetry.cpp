// A δ2-hierarchical monitoring dashboard: correlating fault codes with
// firmware versions per region across a device fleet.
//
//   Faults(Device, Sensor, Fault)       — fault observed on a sensor
//   Firmware(Device, Sensor, Version)   — firmware running on that sensor
//   Location(Device, Region)            — device placement
//
//   Q(Region, Fault, Version) = Faults(Device, Sensor, Fault),
//                               Firmware(Device, Sensor, Version),
//                               Location(Device, Region)
//
// The bound Device/Sensor variables dominate three free variables spread
// over three atoms: the query is δ2-hierarchical (dynamic width 2), so
// IVM^ε maintains it with O(N^{2ε}) amortized updates and O(N^{1−ε})
// delay — and chatty devices (heavy Device keys) are exactly what the
// skew-aware partitions absorb.
//
//   ./examples/fleet_telemetry [events]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/query/classify.h"
#include "src/query/width.h"

using namespace ivme;

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 40000;
  const auto query = *ConjunctiveQuery::Parse(
      "Q(Region, Fault, Version) = Faults(Device, Sensor, Fault), "
      "Firmware(Device, Sensor, Version), Location(Device, Region)");
  std::printf("query: %s\n", query.ToString().c_str());
  std::printf("delta rank %d (δ2-hierarchical), static width %d\n\n", DeltaRank(query),
              StaticWidth(query));

  EngineOptions options;
  options.epsilon = 0.4;
  options.mode = EvalMode::kDynamic;
  Engine engine(query, options);
  engine.Preprocess();

  Rng rng(20260610);
  const Value devices = 1500, sensors = 4, regions = 12, faults = 25, versions = 8;
  auto sensor_id = [&](Value device, Value s) { return device * sensors + s; };

  // Placement first (slowly changing dimension), then the event stream.
  for (Value d = 0; d < devices; ++d) {
    engine.ApplyUpdate("Location", Tuple{d, d % regions}, 1);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int e = 0; e < events; ++e) {
    // 2% of devices are "chatty" and produce half the events (heavy keys).
    const Value device =
        rng.Chance(0.5) ? rng.Range(0, devices / 50) : rng.Range(0, devices - 1);
    const Value sensor = sensor_id(device, rng.Range(0, sensors - 1));
    if (rng.Chance(0.55)) {
      engine.ApplyUpdate("Faults", Tuple{device, sensor, rng.Range(0, faults - 1)}, 1);
    } else {
      // Firmware upgrades replace the previous version on that sensor.
      const Value version = rng.Range(0, versions - 1);
      for (Value v = 0; v < versions; ++v) {
        while (engine.ApplyUpdate("Firmware", Tuple{device, sensor, v}, -1)) {
        }
      }
      engine.ApplyUpdate("Firmware", Tuple{device, sensor, version}, 1);
    }
  }
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Dashboard: the (fault, version) pair with the widest regional spread.
  std::map<std::pair<Value, Value>, int> regions_hit;
  auto it = engine.Enumerate();
  Tuple t;
  Mult m = 0;
  size_t rows = 0;
  while (it->Next(&t, &m)) {
    ++rows;
    regions_hit[{t[1], t[2]}]++;
  }
  std::pair<Value, Value> worst{-1, -1};
  int spread = 0;
  for (const auto& [key, count] : regions_hit) {
    if (count > spread) {
      spread = count;
      worst = key;
    }
  }

  const auto stats = engine.GetStats();
  std::printf("ingested %d events in %.2fs (%.1f us/update amortized)\n", events, ingest_s,
              ingest_s / events * 1e6);
  std::printf("dashboard rows: %zu distinct (region, fault, version) triples\n", rows);
  if (spread > 0) {
    std::printf("widest-spread correlation: fault %lld on firmware %lld across %d regions\n",
                static_cast<long long>(worst.first), static_cast<long long>(worst.second),
                spread);
  }
  std::printf("N=%zu, θ=%.1f, %zu minor / %zu major rebalances\n", engine.database_size(),
              engine.theta(), stats.minor_rebalances, stats.major_rebalances);

  std::string error;
  if (!engine.CheckInvariants(&error)) {
    std::printf("invariant violation: %s\n", error.c_str());
    return 1;
  }
  std::printf("all engine invariants verified.\n");
  return 0;
}
