// Quickstart: build an engine for a hierarchical query, load data,
// enumerate, apply single-tuple updates, and enumerate again.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/core/engine.h"
#include "src/query/width.h"

using namespace ivme;

namespace {

void PrintResult(Engine& engine, const char* label) {
  std::printf("%s\n", label);
  auto it = engine.Enumerate();
  Tuple t;
  Mult mult = 0;
  while (it->Next(&t, &mult)) {
    std::printf("  %s -> multiplicity %lld\n", t.ToString().c_str(),
                static_cast<long long>(mult));
  }
}

}  // namespace

int main() {
  // The paper's running Example 28: Q(A, C) = R(A, B), S(B, C) — a
  // hierarchical query that is NOT free-connex, so constant delay after
  // linear preprocessing is conjectured impossible. IVM^ε trades the three
  // costs against each other through ε.
  auto query = ConjunctiveQuery::Parse("Q(A, C) = R(A, B), S(B, C)");
  if (!query.has_value()) return 1;

  EngineOptions options;
  options.epsilon = 0.5;            // θ = M^ε: the heavy/light knob
  options.mode = EvalMode::kDynamic;  // maintain under updates

  Engine engine(*query, options);
  std::printf("query: %s\n", query->ToString().c_str());
  std::printf("static width w = %d, dynamic width δ = %d\n", StaticWidth(*query),
              DynamicWidth(*query));
  std::printf("guarantees at ε=%.2f: preprocessing O(N^%.2f), delay O(N^%.2f), "
              "amortized update O(N^%.2f)\n\n",
              options.epsilon, 1 + (StaticWidth(*query) - 1) * options.epsilon,
              1 - options.epsilon, DynamicWidth(*query) * options.epsilon);

  // Load a small database, then preprocess (partitions + view trees).
  engine.LoadTuple("R", Tuple{1, 10}, 1);
  engine.LoadTuple("R", Tuple{2, 10}, 1);
  engine.LoadTuple("R", Tuple{2, 20}, 1);
  engine.LoadTuple("S", Tuple{10, 7}, 1);
  engine.LoadTuple("S", Tuple{20, 8}, 2);  // multiplicity 2
  engine.Preprocess();

  PrintResult(engine, "initial result:");

  // Single-tuple updates: inserts and deletes, maintained incrementally.
  engine.ApplyUpdate("S", Tuple{10, 9}, 1);
  engine.ApplyUpdate("R", Tuple{1, 10}, -1);
  PrintResult(engine, "\nafter inserting S(10,9) and deleting R(1,10):");

  // Deletes beyond the stored multiplicity are rejected.
  const bool accepted = engine.ApplyUpdate("S", Tuple{20, 8}, -3);
  std::printf("\ndeleting 3 copies of S(20,8) accepted? %s (only 2 exist)\n",
              accepted ? "yes" : "no");

  const auto stats = engine.GetStats();
  std::printf("\nengine: %zu view trees, %zu indicator triples, %zu view tuples, "
              "N=%zu, M=%zu, θ=%.2f\n",
              stats.num_trees, stats.num_triples, stats.view_tuples,
              engine.database_size(), engine.threshold_base(), engine.theta());
  return 0;
}
