// A miniature serving layer on the multi-query catalog: ONE telemetry
// stream feeds a shared RelationStore, and three registered queries answer
// dashboard panels over it with interleaved enumeration. Every batch is
// consolidated once and written to base storage once; each query only pays
// its own view maintenance.
//
//   Metrics(Device, Sensor)   — active sensor readings per device
//   Fleet(Device, Rack)       — rack placement
//   Hot(Device)               — devices flagged by the alerting pipeline
//
// Registered dashboard panels:
//   devices   Q(Device)               = Metrics(Device, Sensor)
//                 per-device presence (projection; count of distinct
//                 sensors arrives as the enumerated multiplicity)
//   placement Q(Device, Rack, Sensor) = Metrics(Device, Sensor),
//                                       Fleet(Device, Rack)
//                 join panel: live readings with rack context
//   hotlist   Q(Device, Sensor)       = Metrics(Device, Sensor), Hot(Device)
//                 readings restricted to flagged devices
//
// A fourth panel (`racks`) registers LATE — after ingestion has been
// running — and preprocesses from the live store, then tracks the stream
// like the others.
//
//   ./examples/dashboard_server [events]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/counters.h"
#include "src/common/rng.h"
#include "src/core/catalog.h"
#include "src/workload/driver.h"

using namespace ivme;

namespace {

void ShowPanel(const QueryCatalog& catalog, const char* name, size_t limit) {
  auto it = catalog.Enumerate(name);
  Tuple t;
  Mult m = 0;
  size_t shown = 0, total = 0;
  std::printf("  panel %-9s:", name);
  while (it->Next(&t, &m)) {
    if (shown < limit) {
      std::printf(" %s x%lld", t.ToString().c_str(), static_cast<long long>(m));
      ++shown;
    }
    ++total;
  }
  std::printf("%s (%zu tuples)\n", total > shown ? " ..." : "", total);
}

}  // namespace

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 24000;

  QueryCatalog catalog;
  EngineOptions options;
  options.epsilon = 0.5;
  catalog.RegisterQuery("devices", *ConjunctiveQuery::Parse("Q(Device) = Metrics(Device, Sensor)"),
                        options);
  catalog.RegisterQuery(
      "placement",
      *ConjunctiveQuery::Parse(
          "Q(Device, Rack, Sensor) = Metrics(Device, Sensor), Fleet(Device, Rack)"),
      options);
  catalog.RegisterQuery(
      "hotlist",
      *ConjunctiveQuery::Parse("Q(Device, Sensor) = Metrics(Device, Sensor), Hot(Device)"),
      options);

  Rng rng(20260731);
  const Value devices = 1200, racks = 24, sensors = 64;

  // Bootstrap: placement for the whole fleet, a handful of flagged devices.
  for (Value d = 0; d < devices; ++d) {
    catalog.LoadTuple("Fleet", Tuple{d, d % racks}, 1);
    if (d % 37 == 0) catalog.LoadTuple("Hot", Tuple{d}, 1);
  }
  catalog.Preprocess();
  std::printf("catalog live: %zu queries over %zu store tuples\n", catalog.num_queries(),
              catalog.store().TotalSize());

  // One stream: sensor readings appear and expire; devices get flagged and
  // cleared. 2% of devices are chatty and produce half the readings.
  std::vector<Tuple> live_metrics;
  std::vector<Value> hot;
  for (Value d = 0; d < devices; d += 37) hot.push_back(d);
  std::vector<workload::Batch> batches;
  UpdateBatch batch;
  for (int e = 0; e < events; ++e) {
    const Value device =
        rng.Chance(0.5) ? rng.Range(0, devices / 50) : rng.Range(0, devices - 1);
    if (!live_metrics.empty() && rng.Chance(0.4)) {
      const size_t pick = rng.Below(live_metrics.size());
      batch.push_back(Update{"Metrics", live_metrics[pick], -1});  // reading expires
      live_metrics[pick] = live_metrics.back();
      live_metrics.pop_back();
    } else if (rng.Chance(0.02) && !hot.empty()) {
      const size_t pick = rng.Below(hot.size());
      batch.push_back(Update{"Hot", Tuple{hot[pick]}, -1});  // flag cleared
      hot[pick] = hot.back();
      hot.pop_back();
    } else if (rng.Chance(0.02)) {
      const Value d = rng.Range(0, devices - 1);
      batch.push_back(Update{"Hot", Tuple{d}, 1});  // device flagged
      hot.push_back(d);
    } else {
      Tuple reading{device, rng.Range(0, sensors - 1)};
      live_metrics.push_back(reading);
      batch.push_back(Update{"Metrics", std::move(reading), 1});
    }
    if (batch.size() == 128) {
      batches.push_back(std::move(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));

  // Ingest the first half, peeking at the panels along the way.
  ResetCounters();
  const size_t half = batches.size() / 2;
  std::vector<workload::Batch> first(batches.begin(), batches.begin() + half);
  std::vector<workload::Batch> second(batches.begin() + half, batches.end());
  auto stats = workload::DriveBatches(catalog, first);
  std::printf("ingested %zu records in %zu batches (%.0f records/s; %llu base writes for %zu "
              "net entries across %zu queries)\n",
              stats.records, stats.batches, stats.Throughput(),
              static_cast<unsigned long long>(AggregateCounters().base_writes), stats.applied,
              catalog.num_queries());
  ShowPanel(catalog, "devices", 3);
  ShowPanel(catalog, "placement", 2);
  ShowPanel(catalog, "hotlist", 3);

  // A new panel arrives while the stream is live: per-rack rollup of
  // flagged devices. It preprocesses from the store as of "now".
  catalog.RegisterQuery(
      "racks", *ConjunctiveQuery::Parse("Q(Rack) = Fleet(Device, Rack), Hot(Device)"), options);
  std::printf("late-registered panel 'racks' against the live store\n");
  ShowPanel(catalog, "racks", 4);

  // Keep ingesting; all four panels track the same stream.
  stats = workload::DriveBatches(catalog, second);
  std::printf("ingested %zu more records (%.0f records/s)\n", stats.records,
              stats.Throughput());
  ShowPanel(catalog, "devices", 3);
  ShowPanel(catalog, "placement", 2);
  ShowPanel(catalog, "hotlist", 3);
  ShowPanel(catalog, "racks", 4);

  std::string error;
  if (!catalog.CheckInvariants(&error)) {
    std::fprintf(stderr, "invariant violation: %s\n", error.c_str());
    return 1;
  }
  std::printf("all per-query invariants hold; store holds %zu tuples, N per query:",
              catalog.store().TotalSize());
  for (const auto& query : catalog.queries()) {
    std::printf(" %s=%zu", query->name().c_str(), query->database_size());
  }
  std::printf("\n");
  return 0;
}
