// Interactive shell around the multi-query catalog: define an initial
// hierarchical query on the command line, register more at runtime, then
// stream updates into the shared relation store and enumerate any
// registered query. The serving layer is a DurableCatalog over a
// ShardedCatalog (1 shard unless told otherwise), so the shell doubles as
// a cockpit for the shared-store fan-out, the shared-nothing sharding
// layer, and the WAL + snapshot durability stack.
//
//   ./tools/ivme_shell "Q(A, C) = R(A, B), S(B, C)" [epsilon] [shards] [mode] [skew]
//
// `mode` is `amortized` (default) or `incremental` — the major-rebalance
// strategy every registered query runs with (EngineOptions::rebalance_mode):
// synchronous stop-the-world rebuilds vs bounded-work migration slices.
// A trailing `skew` enables hot-key overflow routing (two-level router;
// promotions show up under `stats`).
//
// Commands (stdin; a leading backslash is accepted on any command):
//   + R 1 2 [m]       insert tuple (1,2) into R with multiplicity m (default 1).
//                     Values are integers or "quoted strings" — strings are
//                     interned into the catalog's shared dictionary and print
//                     back quoted in `?` output
//   - R 1 2 [m]       delete m copies (default 1)
//   batch begin       start buffering +/- commands instead of applying them
//   batch end         apply the buffered updates as one consolidated batch
//   batch abort       drop the buffered updates
//   register N Q(..)  register query Q under name N (preprocesses from the
//                     live store; with shards > 1 it must route consistently).
//                     Atoms may carry mutability prefixes — e.g.
//                     `register J Q(A,C) = R(A,B), static S(B,C)` — declaring
//                     the relation static (never updated after preprocessing)
//                     or insert_only (never deleted from); declarations are
//                     sticky per relation and later writes that violate them
//                     are rejected with the reason printed
//   drop N            unregister query N (the store keeps its relations)
//   use N             make N the target of ?, count, widths, trees
//   queries           list registered queries (the active one is starred)
//   shards N          rebuild the catalog with N hash-partitioned shards
//   save DIR          make the catalog durable at DIR (snapshot + WAL; every
//                     later update is logged and survives restart)
//   open DIR          recover the catalog previously saved at DIR (replaces
//                     the current one, including its queries and shards)
//   checkpoint        write a snapshot now and truncate the WAL behind it
//   ?                 enumerate the active query's result (first 50 tuples)
//   count             number of distinct result tuples of the active query
//   stats             shared-store size, per-shard routed load + imbalance,
//                     per-query N, M, θ, durability counters
//   widths            active query's classification and widths
//   trees             print the active query's view trees (per shard)
//   check             verify all internal invariants (incl. routing)
//   help              this text
//   quit              exit
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fmt.h"
#include "src/core/durable_catalog.h"
#include "src/data/dictionary.h"
#include "src/core/sharded_engine.h"
#include "src/query/classify.h"
#include "src/query/hypergraph.h"
#include "src/query/width.h"

using namespace ivme;

namespace {

void PrintHelp() {
  std::printf(
      "commands: + REL v1 v2 .. [m] | - REL v1 v2 .. [m] | batch begin|end|abort |\n"
      "          register NAME Q(..) = .. | drop NAME | use NAME | queries | shards N |\n"
      "          save DIR | open DIR | checkpoint |\n"
      "          ? | count | stats | widths | trees | check | help | quit\n");
}

void PrintWidths(const ConjunctiveQuery& q) {
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("  hierarchical:    %s\n", IsHierarchical(q) ? "yes" : "no");
  if (!IsHierarchical(q)) return;
  std::printf("  q-hierarchical:  %s\n", IsQHierarchical(q) ? "yes" : "no");
  std::printf("  free-connex:     %s\n", IsFreeConnex(q) ? "yes" : "no");
  std::printf("  delta rank:      delta_%d-hierarchical\n", DeltaRank(q));
  std::printf("  static width w:  %d\n", StaticWidth(q));
  std::printf("  dynamic width d: %d\n", DynamicWidth(q));
  std::string why;
  const bool shardable = ShardedEngine::CanShard(q, &why);
  std::printf("  shardable:       %s%s%s\n", shardable ? "yes" : "no", shardable ? "" : " — ",
              shardable ? "" : why.c_str());
}

/// Shell state: the durable catalog plus the name of the active query.
struct Shell {
  std::unique_ptr<DurableCatalog> durable;
  double epsilon = 0.5;
  RebalanceMode rebalance_mode = RebalanceMode::kAmortized;
  std::string active;

  ShardedCatalog& cat() { return durable->catalog(); }
  const ShardedCatalog& cat() const { return durable->catalog(); }

  EngineOptions QueryOptions() const {
    EngineOptions options;
    options.epsilon = epsilon;
    options.mode = EvalMode::kDynamic;
    options.rebalance_mode = rebalance_mode;
    return options;
  }

  /// Arity of a store relation, or -1 when no registered query reads it.
  int ArityOf(const std::string& relation) const {
    const Relation* stored = cat().shard(0).store().Find(relation);
    return stored != nullptr ? static_cast<int>(stored->schema().size()) : -1;
  }

  /// Dictionary-aware tuple rendering: interned ids print as their quoted
  /// strings, everything else as plain integers.
  std::string FormatTuple(const Tuple& t) const {
    const StringDictionary& dict = *cat().dictionary();
    std::string out = "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ", ";
      out += dict.FormatValue(t[i]);
    }
    return out + ")";
  }
};

/// Reads the rest of `in` as tuple values: raw integers, or "quoted
/// strings" interned into the catalog's dictionary. Returns false (with a
/// message) on a malformed token.
bool ReadValues(std::istringstream& in, Shell* shell, std::vector<Value>* values) {
  for (;;) {
    in >> std::ws;
    const int c = in.peek();
    if (c == std::char_traits<char>::eof()) return true;
    if (c == '"') {
      std::string s;
      if (!(in >> std::quoted(s))) {
        std::printf("! unterminated string literal\n");
        return false;
      }
      values->push_back(shell->cat().dictionary()->Intern(s));
    } else {
      Value v = 0;
      if (!(in >> v)) {
        std::printf("! expected an integer or a \"quoted string\"\n");
        return false;
      }
      values->push_back(v);
    }
  }
}

void PrintStats(const Shell& shell) {
  const ShardedCatalog& catalog = shell.cat();
  std::printf("store: %s tuples | shards=%zu threads=%zu | queries=%zu | relations:",
              WithThousands(static_cast<long long>(catalog.store_size())).c_str(),
              catalog.num_shards(), catalog.num_threads(), catalog.num_queries());
  for (const auto& relation : catalog.shard(0).store().RelationNames()) {
    size_t size = 0;
    for (size_t s = 0; s < catalog.num_shards(); ++s) {
      const Relation* stored = catalog.shard(s).store().Find(relation);
      if (stored != nullptr) size += stored->size();
    }
    const Mutability mutability = catalog.shard(0).store().MutabilityOf(relation);
    std::printf(" %s=%s(x%zu%s%s)", relation.c_str(),
                WithThousands(static_cast<long long>(size)).c_str(),
                catalog.shard(0).store().RefCount(relation),
                mutability == Mutability::kDynamic ? "" : ",",
                mutability == Mutability::kDynamic ? "" : MutabilityName(mutability));
  }
  std::printf("\n");
  // Ingest tail latency as the caller of this layer experiences it
  // (routing, consolidation, and the shard barrier included), recorded by
  // the new LatencyHistogram on every ApplyUpdate/ApplyBatch.
  std::printf("  latency: updates %s | batches %s\n",
              catalog.update_latency().Summary().c_str(),
              catalog.batch_latency().Summary().c_str());
  // Router accounting: what each shard was handed since start (or the last
  // ResetLoadStats) and how lopsided the spread is — max/mean of 1.00 is a
  // perfectly balanced write load.
  if (catalog.num_shards() > 1) {
    std::printf("  load:");
    for (size_t s = 0; s < catalog.num_shards(); ++s) {
      const ShardLoadStats load = catalog.ShardLoad(s);
      std::printf("%s shard %zu routed=%s net=%s", s == 0 ? "" : " |", s,
                  WithThousands(static_cast<long long>(load.routed_tuples)).c_str(),
                  WithThousands(static_cast<long long>(load.net_entries)).c_str());
    }
    const LoadImbalance imbalance = catalog.ComputeImbalance();
    std::printf("\n  imbalance: max/mean=%.2f (max=%s mean=%.1f)\n", imbalance.max_mean,
                WithThousands(static_cast<long long>(imbalance.max_tuples)).c_str(),
                imbalance.mean_tuples);
    const std::vector<OverflowEntry> overflow = catalog.OverflowEntries();
    if (!overflow.empty()) {
      std::printf("  hot keys:");
      for (const OverflowEntry& e : overflow) {
        std::printf(" %s (spread %s, primary shard %zu)",
                    catalog.dictionary()->FormatValue(e.root).c_str(),
                    e.spread_relation.c_str(), e.primary);
      }
      std::printf("\n");
    }
  }
  if (catalog.dictionary()->size() > 0) {
    std::printf("  dictionary: %zu interned string(s)\n", catalog.dictionary()->size());
  }
  // Durability counters: WAL volume, checkpoint positions, and what the
  // last Open had to replay.
  const DurabilityStats d = shell.durable->durability_stats();
  if (d.durable) {
    std::printf("  durability: dir=%s | lsn=%llu | wal records=%llu bytes=%llu syncs=%llu "
                "segments=%zu | checkpoints=%zu @lsn=%llu | replayed=%zu%s\n",
                shell.durable->dir().c_str(), static_cast<unsigned long long>(d.last_lsn),
                static_cast<unsigned long long>(d.wal_records),
                static_cast<unsigned long long>(d.wal_bytes),
                static_cast<unsigned long long>(d.wal_syncs), d.wal_segments,
                d.checkpoints_taken, static_cast<unsigned long long>(d.checkpoint_lsn),
                d.replayed_records, d.recovered_torn_tail ? " (torn tail truncated)" : "");
  } else {
    std::printf("  durability: off (use 'save DIR')\n");
  }
  // Per-query maintenance state: one line per query per shard — each shard
  // sizes M and θ = M^ε from its own slice, and each query has its own ε.
  for (const auto& name : catalog.QueryNames()) {
    for (size_t s = 0; s < catalog.num_shards(); ++s) {
      const MaintainedQuery* query = catalog.FindQuery(name, s);
      const auto stats = query->GetStats();
      std::printf("  %-12s%s N=%s M=%s theta=%.2f (eps=%.2f) | view-tuples=%s | updates=%zu "
                  "batches=%zu minor=%zu major=%zu",
                  name.c_str(),
                  catalog.num_shards() > 1 ? (" shard " + std::to_string(s)).c_str() : "",
                  WithThousands(static_cast<long long>(query->database_size())).c_str(),
                  WithThousands(static_cast<long long>(query->threshold_base())).c_str(),
                  query->theta(), query->epsilon(),
                  WithThousands(static_cast<long long>(stats.view_tuples)).c_str(),
                  stats.updates, stats.batches, stats.minor_rebalances,
                  stats.major_rebalances);
      if (stats.rebalance_slices > 0 || stats.rebalance_pending > 0) {
        std::printf(" | slices=%zu migrated=%zu pending=%zu restarts=%zu",
                    stats.rebalance_slices, stats.migrated_keys, stats.rebalance_pending,
                    stats.rebalance_restarts);
      }
      std::printf("\n");
    }
  }
}

std::unique_ptr<DurableCatalog> MakeCatalog(size_t shards, bool skew) {
  ShardedCatalogOptions options;
  options.num_shards = shards;
  options.skew.enabled = skew;
  return std::make_unique<DurableCatalog>(options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s \"Q(A, C) = R(A, B), S(B, C)\" [epsilon] [shards] "
                 "[amortized|incremental] [skew]\n",
                 argv[0]);
    return 2;
  }
  auto query = ConjunctiveQuery::Parse(argv[1]);
  if (!query.has_value()) {
    std::fprintf(stderr, "could not parse query: %s\n", argv[1]);
    return 2;
  }
  if (!IsHierarchical(*query)) {
    std::fprintf(stderr, "query is not hierarchical; the engine does not support it.\n");
    PrintWidths(*query);
    return 2;
  }

  Shell shell;
  shell.epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  const long long shards_arg = argc > 3 ? std::atoll(argv[3]) : 1;
  size_t shards = shards_arg < 1 ? 1 : static_cast<size_t>(shards_arg);
  if (argc > 4) {
    const std::string mode_arg = argv[4];
    if (mode_arg == "incremental") {
      shell.rebalance_mode = RebalanceMode::kIncremental;
    } else if (mode_arg != "amortized") {
      std::fprintf(stderr, "unknown rebalance mode '%s' (amortized|incremental)\n",
                   mode_arg.c_str());
      return 2;
    }
  }
  const bool skew = argc > 5 && std::string(argv[5]) == "skew";
  std::string why;
  if (shards > 1 && !ShardedEngine::CanShard(*query, &why)) {
    std::fprintf(stderr, "cannot shard this query (%s); running with 1 shard\n", why.c_str());
    shards = 1;
  }
  shell.durable = MakeCatalog(shards, skew);
  shell.active = query->name();
  if (!shell.durable->RegisterQuery(shell.active, *query, shell.QueryOptions(), &why)) {
    std::fprintf(stderr, "could not register query: %s\n", why.c_str());
    return 2;
  }
  shell.durable->Preprocess();

  PrintWidths(*query);
  std::printf(
      "catalog ready at eps=%.2f with %zu shard(s), %s rebalancing%s; active query '%s'; "
      "type 'help'\n",
      shell.epsilon, shell.cat().num_shards(),
      shell.rebalance_mode == RebalanceMode::kIncremental ? "incremental" : "amortized",
      skew ? ", skew routing on" : "", shell.active.c_str());

  std::string line;
  UpdateBatch pending;  // updates buffered between `batch begin` and `batch end`
  bool batching = false;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd.size() > 1 && cmd[0] == '\\') cmd.erase(0, 1);
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "register") {
      std::string name;
      if (!(in >> name)) {
        std::printf("! usage: register NAME Q(..) = ..\n");
        continue;
      }
      std::string text;
      std::getline(in, text);
      auto q = ConjunctiveQuery::Parse(text);
      if (!q.has_value()) {
        std::printf("! could not parse query: %s\n", text.c_str());
        continue;
      }
      if (!IsHierarchical(*q)) {
        std::printf("! query is not hierarchical\n");
        continue;
      }
      if (!shell.durable->RegisterQuery(name, *q, shell.QueryOptions(), &why)) {
        std::printf("! cannot register: %s\n", why.c_str());
        continue;
      }
      shell.active = name;
      std::printf("registered '%s' (%s); now active\n", name.c_str(), q->ToString().c_str());
    } else if (cmd == "drop") {
      std::string name;
      if (!(in >> name) || !shell.durable->DropQuery(name)) {
        std::printf("! usage: drop NAME (a registered query)\n");
        continue;
      }
      std::printf("dropped '%s' (store relations kept)\n", name.c_str());
      if (shell.active == name) {
        const auto names = shell.cat().QueryNames();
        shell.active = names.empty() ? "" : names.front();
        std::printf("active query now '%s'\n", shell.active.c_str());
      }
    } else if (cmd == "use") {
      std::string name;
      if (!(in >> name) || shell.cat().FindQuery(name) == nullptr) {
        std::printf("! usage: use NAME (a registered query)\n");
        continue;
      }
      shell.active = name;
      std::printf("active query now '%s'\n", shell.active.c_str());
    } else if (cmd == "queries") {
      for (const auto& name : shell.cat().QueryNames()) {
        const MaintainedQuery* q = shell.cat().FindQuery(name);
        std::printf("  %c %-12s %s (eps=%.2f)\n", name == shell.active ? '*' : ' ',
                    name.c_str(), q->query().ToString().c_str(), q->epsilon());
      }
    } else if (cmd == "shards") {
      long long n = 0;
      if (!(in >> n) || n < 1) {
        std::printf("! usage: shards N (N >= 1)\n");
        continue;
      }
      if (batching) {
        std::printf("! close the open batch first (batch end / batch abort)\n");
        continue;
      }
      // Rebuild: re-register every query, reload the dumped store, and
      // re-preprocess. Update/rebalance counters restart from zero; a
      // durable catalog logs the new K, so it survives restart.
      std::vector<std::string> dropped;
      const Status status = shell.durable->Reshard(static_cast<size_t>(n), &dropped);
      if (!status.ok()) {
        std::printf("! %s\n", status.message().c_str());
        continue;
      }
      for (const auto& relation : dropped) {
        std::printf("! dropping %s: no registered query reads it\n", relation.c_str());
      }
      std::printf("rebuilt with %zu shard(s) over %zu store tuples (threads=%zu)\n",
                  shell.cat().num_shards(), shell.cat().store_size(),
                  shell.cat().num_threads());
    } else if (cmd == "save") {
      std::string dir;
      if (!(in >> dir)) {
        std::printf("! usage: save DIR\n");
        continue;
      }
      const Status status = shell.durable->AttachDir(dir);
      if (!status.ok()) {
        std::printf("! %s\n", status.message().c_str());
        continue;
      }
      const Status done = shell.durable->WaitForCheckpoint();
      if (!done.ok()) {
        std::printf("! checkpoint failed: %s\n", done.message().c_str());
        continue;
      }
      std::printf("saved to %s (snapshot @lsn=%llu; updates now logged)\n", dir.c_str(),
                  static_cast<unsigned long long>(shell.durable->durability_stats().checkpoint_lsn));
    } else if (cmd == "open") {
      std::string dir;
      if (!(in >> dir)) {
        std::printf("! usage: open DIR\n");
        continue;
      }
      if (batching) {
        std::printf("! close the open batch first (batch end / batch abort)\n");
        continue;
      }
      Status status;
      auto opened = DurableCatalog::Open(dir, ShardedCatalogOptions(), DurabilityOptions(),
                                         &status);
      if (opened == nullptr) {
        std::printf("! cannot open %s: %s\n", dir.c_str(), status.message().c_str());
        continue;
      }
      shell.durable = std::move(opened);
      const auto names = shell.cat().QueryNames();
      if (shell.active.empty() || shell.cat().FindQuery(shell.active) == nullptr) {
        shell.active = names.empty() ? "" : names.front();
      }
      const DurabilityStats d = shell.durable->durability_stats();
      std::printf("opened %s: %zu quer%s, %zu shard(s), %zu store tuples | replayed %zu WAL "
                  "record(s)%s\n",
                  dir.c_str(), names.size(), names.size() == 1 ? "y" : "ies",
                  shell.cat().num_shards(), shell.cat().store_size(), d.replayed_records,
                  d.recovered_torn_tail ? " (torn tail truncated)" : "");
      if (!shell.active.empty()) std::printf("active query now '%s'\n", shell.active.c_str());
    } else if (cmd == "checkpoint") {
      Status status = shell.durable->Checkpoint();
      if (status.ok()) status = shell.durable->WaitForCheckpoint();
      if (!status.ok()) {
        std::printf("! %s\n", status.message().c_str());
        continue;
      }
      const DurabilityStats d = shell.durable->durability_stats();
      std::printf("checkpoint #%zu @lsn=%llu (WAL truncated behind it)\n", d.checkpoints_taken,
                  static_cast<unsigned long long>(d.checkpoint_lsn));
    } else if (cmd == "batch") {
      std::string sub;
      in >> sub;
      if (sub == "begin" && batching) {
        std::printf("! batch already open (%zu buffered); 'batch end' or 'batch abort' first\n",
                    pending.size());
      } else if (sub == "begin") {
        batching = true;
        pending.clear();
        std::printf("batch open; +/- commands buffer until 'batch end'\n");
      } else if (sub == "end" && batching) {
        BatchResult result;
        const Status status = shell.durable->TryApplyBatch(pending, &result);
        if (!status.ok()) {
          std::printf("! batch refused: %s\n", status.message().c_str());
        } else {
          std::printf("applied %zu updates as %zu net entries (%zu rejected) (store=%zu)\n",
                      pending.size(), result.applied, result.rejected,
                      shell.cat().store_size());
        }
        batching = false;
        pending.clear();
      } else if (sub == "abort" && batching) {
        std::printf("dropped %zu buffered updates\n", pending.size());
        batching = false;
        pending.clear();
      } else {
        std::printf("! usage: batch begin|end|abort (end/abort need an open batch)\n");
      }
    } else if (cmd == "+" || cmd == "-") {
      std::string rel;
      if (!(in >> rel)) {
        std::printf("! expected a relation name\n");
        continue;
      }
      const int arity = shell.ArityOf(rel);
      if (arity < 0) {
        std::printf("! unknown relation %s (no registered query reads it)\n", rel.c_str());
        continue;
      }
      std::vector<Value> values;
      if (!ReadValues(in, &shell, &values)) continue;
      Mult mult = 1;
      if (values.size() == static_cast<size_t>(arity) + 1) {
        mult = values.back();
        values.pop_back();
      }
      if (values.size() != static_cast<size_t>(arity)) {
        std::printf("! %s has arity %d\n", rel.c_str(), arity);
        continue;
      }
      if (cmd == "-") mult = -mult;
      if (batching) {
        pending.push_back(Update{rel, Tuple(std::move(values)), mult});
        std::printf("buffered (%zu pending)\n", pending.size());
        continue;
      }
      const Status status = shell.durable->TryApplyUpdate(rel, Tuple(std::move(values)), mult);
      if (status.ok()) {
        std::printf("ok (store=%zu)\n", shell.cat().store_size());
      } else {
        std::printf("! rejected: %s\n", status.message().c_str());
      }
    } else if (cmd == "?") {
      if (shell.active.empty()) {
        std::printf("! no registered queries\n");
        continue;
      }
      auto it = shell.cat().Enumerate(shell.active);
      RowBuffer rows;
      const size_t shown = it->FillBatch(&rows, 50);
      for (size_t i = 0; i < shown; ++i) {
        std::printf("  %s x%lld\n", shell.FormatTuple(rows.tuple(i)).c_str(),
                    static_cast<long long>(rows.mult(i)));
      }
      size_t rest = 0;
      for (;;) {
        rows.Clear();
        const size_t got = it->FillBatch(&rows, 256);
        rest += got;
        if (got < 256) break;
      }
      if (rest > 0) std::printf("  ... and %zu more\n", rest);
      if (shown == 0) std::printf("  (empty)\n");
    } else if (cmd == "count") {
      if (shell.active.empty()) {
        std::printf("! no registered queries\n");
        continue;
      }
      auto it = shell.cat().Enumerate(shell.active);
      RowBuffer rows;
      size_t count = 0;
      for (;;) {
        rows.Clear();
        const size_t got = it->FillBatch(&rows, 256);
        count += got;
        if (got < 256) break;
      }
      std::printf("%zu distinct tuples\n", count);
    } else if (cmd == "stats") {
      PrintStats(shell);
    } else if (cmd == "widths") {
      if (shell.active.empty()) {
        std::printf("! no registered queries\n");
        continue;
      }
      PrintWidths(shell.cat().FindQuery(shell.active)->query());
    } else if (cmd == "trees") {
      if (shell.active.empty()) {
        std::printf("! no registered queries\n");
        continue;
      }
      for (size_t s = 0; s < shell.cat().num_shards(); ++s) {
        if (shell.cat().num_shards() > 1) std::printf("--- shard %zu ---\n", s);
        std::printf("%s", shell.cat().FindQuery(shell.active, s)->DebugString().c_str());
      }
    } else if (cmd == "check") {
      std::string error;
      std::printf(shell.cat().CheckInvariants(&error) ? "all invariants hold\n" : "FAILED: %s\n",
                  error.c_str());
    } else {
      std::printf("! unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
