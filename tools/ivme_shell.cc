// Interactive shell around the engine: define a hierarchical query on the
// command line, then stream updates and enumerate results.
//
//   ./tools/ivme_shell "Q(A, C) = R(A, B), S(B, C)" [epsilon]
//
// Commands (stdin):
//   + R 1 2 [m]     insert tuple (1,2) into R with multiplicity m (default 1)
//   - R 1 2 [m]     delete m copies (default 1)
//   batch begin     start buffering +/- commands instead of applying them
//   batch end       apply the buffered updates as one consolidated batch
//   batch abort     drop the buffered updates
//   ?               enumerate the result (first 50 tuples)
//   count           number of distinct result tuples
//   stats           engine statistics (N, M, θ, views, rebalances, batches)
//   widths          query classification and widths
//   trees           print the view trees
//   check           verify all internal invariants
//   help            this text
//   quit            exit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "src/common/fmt.h"
#include "src/core/engine.h"
#include "src/query/classify.h"
#include "src/query/hypergraph.h"
#include "src/query/width.h"

using namespace ivme;

namespace {

void PrintHelp() {
  std::printf(
      "commands: + REL v1 v2 .. [m] | - REL v1 v2 .. [m] | batch begin|end|abort |\n"
      "          ? | count | stats | widths | trees | check | help | quit\n");
}

void PrintWidths(const ConjunctiveQuery& q) {
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("  hierarchical:    %s\n", IsHierarchical(q) ? "yes" : "no");
  if (!IsHierarchical(q)) return;
  std::printf("  q-hierarchical:  %s\n", IsQHierarchical(q) ? "yes" : "no");
  std::printf("  free-connex:     %s\n", IsFreeConnex(q) ? "yes" : "no");
  std::printf("  delta rank:      delta_%d-hierarchical\n", DeltaRank(q));
  std::printf("  static width w:  %d\n", StaticWidth(q));
  std::printf("  dynamic width d: %d\n", DynamicWidth(q));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s \"Q(A, C) = R(A, B), S(B, C)\" [epsilon]\n", argv[0]);
    return 2;
  }
  auto query = ConjunctiveQuery::Parse(argv[1]);
  if (!query.has_value()) {
    std::fprintf(stderr, "could not parse query: %s\n", argv[1]);
    return 2;
  }
  if (!IsHierarchical(*query)) {
    std::fprintf(stderr, "query is not hierarchical; the engine does not support it.\n");
    PrintWidths(*query);
    return 2;
  }

  EngineOptions options;
  options.epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  options.mode = EvalMode::kDynamic;
  Engine engine(*query, options);
  engine.Preprocess();

  PrintWidths(*query);
  std::printf("engine ready at eps=%.2f; type 'help' for commands\n", options.epsilon);

  std::string line;
  UpdateBatch pending;     // updates buffered between `batch begin` and `batch end`
  bool batching = false;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "batch") {
      std::string sub;
      in >> sub;
      if (sub == "begin" && batching) {
        std::printf("! batch already open (%zu buffered); 'batch end' or 'batch abort' first\n",
                    pending.size());
      } else if (sub == "begin") {
        batching = true;
        pending.clear();
        std::printf("batch open; +/- commands buffer until 'batch end'\n");
      } else if (sub == "end" && batching) {
        const auto result = engine.ApplyBatch(pending);
        std::printf("applied %zu updates as %zu net entries (%zu rejected) (N=%zu)\n",
                    pending.size(), result.applied, result.rejected, engine.database_size());
        batching = false;
        pending.clear();
      } else if (sub == "abort" && batching) {
        std::printf("dropped %zu buffered updates\n", pending.size());
        batching = false;
        pending.clear();
      } else {
        std::printf("! usage: batch begin|end|abort (end/abort need an open batch)\n");
      }
    } else if (cmd == "+" || cmd == "-") {
      std::string rel;
      if (!(in >> rel)) {
        std::printf("! expected a relation name\n");
        continue;
      }
      size_t arity = 0;
      bool known = false;
      for (const auto& atom : query->atoms()) {
        if (atom.relation == rel) {
          arity = atom.schema.size();
          known = true;
        }
      }
      if (!known) {
        std::printf("! unknown relation %s\n", rel.c_str());
        continue;
      }
      std::vector<Value> values;
      Value v = 0;
      while (in >> v) values.push_back(v);
      Mult mult = 1;
      if (values.size() == arity + 1) {
        mult = values.back();
        values.pop_back();
      }
      if (values.size() != arity) {
        std::printf("! %s has arity %zu\n", rel.c_str(), arity);
        continue;
      }
      if (cmd == "-") mult = -mult;
      if (batching) {
        pending.push_back(Update{rel, Tuple(std::move(values)), mult});
        std::printf("buffered (%zu pending)\n", pending.size());
        continue;
      }
      const bool ok = engine.ApplyUpdate(rel, Tuple(std::move(values)), mult);
      std::printf(ok ? "ok (N=%zu)\n" : "rejected (delete below zero) (N=%zu)\n",
                  engine.database_size());
    } else if (cmd == "?") {
      auto it = engine.Enumerate();
      Tuple t;
      Mult m = 0;
      size_t shown = 0;
      while (shown < 50 && it->Next(&t, &m)) {
        std::printf("  %s x%lld\n", t.ToString().c_str(), static_cast<long long>(m));
        ++shown;
      }
      size_t rest = 0;
      while (it->Next(&t, &m)) ++rest;
      if (rest > 0) std::printf("  ... and %zu more\n", rest);
      if (shown == 0) std::printf("  (empty)\n");
    } else if (cmd == "count") {
      auto it = engine.Enumerate();
      Tuple t;
      Mult m = 0;
      size_t count = 0;
      while (it->Next(&t, &m)) ++count;
      std::printf("%zu distinct tuples\n", count);
    } else if (cmd == "stats") {
      const auto stats = engine.GetStats();
      std::printf("N=%s M=%s theta=%.2f | trees=%zu triples=%zu view-tuples=%s | "
                  "updates=%zu batches=%zu net-entries=%zu minor=%zu major=%zu\n",
                  WithThousands(static_cast<long long>(engine.database_size())).c_str(),
                  WithThousands(static_cast<long long>(engine.threshold_base())).c_str(),
                  engine.theta(), stats.num_trees, stats.num_triples,
                  WithThousands(static_cast<long long>(stats.view_tuples)).c_str(),
                  stats.updates, stats.batches, stats.batch_net_entries,
                  stats.minor_rebalances, stats.major_rebalances);
    } else if (cmd == "widths") {
      PrintWidths(*query);
    } else if (cmd == "trees") {
      std::printf("%s", engine.DebugString().c_str());
    } else if (cmd == "check") {
      std::string error;
      std::printf(engine.CheckInvariants(&error) ? "all invariants hold\n" : "FAILED: %s\n",
                  error.c_str());
    } else {
      std::printf("! unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
