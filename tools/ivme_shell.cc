// Interactive shell around the engine: define a hierarchical query on the
// command line, then stream updates and enumerate results. The engine is a
// ShardedEngine (1 shard unless told otherwise), so the shell doubles as a
// cockpit for the shared-nothing sharding layer: `shards N` re-partitions
// the live database across N independent per-shard engines, and `stats`
// shows each shard's own N, M, and θ = M^ε next to the aggregate.
//
//   ./tools/ivme_shell "Q(A, C) = R(A, B), S(B, C)" [epsilon] [shards]
//
// Commands (stdin; a leading backslash is accepted on any command):
//   + R 1 2 [m]     insert tuple (1,2) into R with multiplicity m (default 1)
//   - R 1 2 [m]     delete m copies (default 1)
//   batch begin     start buffering +/- commands instead of applying them
//   batch end       apply the buffered updates as one consolidated batch
//   batch abort     drop the buffered updates
//   shards N        rebuild the engine with N hash-partitioned shards
//   ?               enumerate the result (first 50 tuples)
//   count           number of distinct result tuples
//   stats           aggregate and per-shard statistics (N, M, θ, views, ...)
//   widths          query classification and widths
//   trees           print the view trees (per shard)
//   check           verify all internal invariants (incl. routing)
//   help            this text
//   quit            exit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/common/fmt.h"
#include "src/core/sharded_engine.h"
#include "src/query/classify.h"
#include "src/query/hypergraph.h"
#include "src/query/width.h"

using namespace ivme;

namespace {

void PrintHelp() {
  std::printf(
      "commands: + REL v1 v2 .. [m] | - REL v1 v2 .. [m] | batch begin|end|abort |\n"
      "          shards N | ? | count | stats | widths | trees | check | help | quit\n");
}

void PrintWidths(const ConjunctiveQuery& q) {
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("  hierarchical:    %s\n", IsHierarchical(q) ? "yes" : "no");
  if (!IsHierarchical(q)) return;
  std::printf("  q-hierarchical:  %s\n", IsQHierarchical(q) ? "yes" : "no");
  std::printf("  free-connex:     %s\n", IsFreeConnex(q) ? "yes" : "no");
  std::printf("  delta rank:      delta_%d-hierarchical\n", DeltaRank(q));
  std::printf("  static width w:  %d\n", StaticWidth(q));
  std::printf("  dynamic width d: %d\n", DynamicWidth(q));
  std::string why;
  const bool shardable = ShardedEngine::CanShard(q, &why);
  std::printf("  shardable:       %s%s%s\n", shardable ? "yes" : "no", shardable ? "" : " — ",
              shardable ? "" : why.c_str());
}

std::unique_ptr<ShardedEngine> MakeEngine(const ConjunctiveQuery& query, double epsilon,
                                          size_t shards) {
  ShardedEngineOptions options;
  options.engine.epsilon = epsilon;
  options.engine.mode = EvalMode::kDynamic;
  options.num_shards = shards;
  auto engine = std::make_unique<ShardedEngine>(query, options);
  return engine;
}

void PrintStats(const ShardedEngine& engine, double epsilon) {
  const auto stats = engine.GetStats();
  std::printf("aggregate: N=%s | shards=%zu threads=%zu | trees=%zu triples=%zu "
              "view-tuples=%s | updates=%zu batches=%zu net-entries=%zu minor=%zu major=%zu\n",
              WithThousands(static_cast<long long>(engine.database_size())).c_str(),
              engine.num_shards(), engine.num_threads(), stats.num_trees, stats.num_triples,
              WithThousands(static_cast<long long>(stats.view_tuples)).c_str(), stats.updates,
              stats.batches, stats.batch_net_entries, stats.minor_rebalances,
              stats.major_rebalances);
  // Per-shard thresholds: each shard sizes M and θ = M^ε from its own
  // slice, so the heavy/light cut is visibly independent across shards.
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const Engine& shard = engine.shard(s);
    const auto shard_stats = shard.GetStats();
    std::printf("  shard %zu: N=%s M=%s theta=%.2f (eps=%.2f) | view-tuples=%s | "
                "updates=%zu minor=%zu major=%zu\n",
                s, WithThousands(static_cast<long long>(shard.database_size())).c_str(),
                WithThousands(static_cast<long long>(shard.threshold_base())).c_str(),
                shard.theta(), epsilon,
                WithThousands(static_cast<long long>(shard_stats.view_tuples)).c_str(),
                shard_stats.updates, shard_stats.minor_rebalances,
                shard_stats.major_rebalances);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s \"Q(A, C) = R(A, B), S(B, C)\" [epsilon] [shards]\n",
                 argv[0]);
    return 2;
  }
  auto query = ConjunctiveQuery::Parse(argv[1]);
  if (!query.has_value()) {
    std::fprintf(stderr, "could not parse query: %s\n", argv[1]);
    return 2;
  }
  if (!IsHierarchical(*query)) {
    std::fprintf(stderr, "query is not hierarchical; the engine does not support it.\n");
    PrintWidths(*query);
    return 2;
  }

  const double epsilon = argc > 2 ? std::atof(argv[2]) : 0.5;
  const long long shards_arg = argc > 3 ? std::atoll(argv[3]) : 1;
  size_t shards = shards_arg < 1 ? 1 : static_cast<size_t>(shards_arg);
  std::string why;
  if (shards > 1 && !ShardedEngine::CanShard(*query, &why)) {
    std::fprintf(stderr, "cannot shard this query (%s); running with 1 shard\n", why.c_str());
    shards = 1;
  }
  auto engine = MakeEngine(*query, epsilon, shards);
  engine->Preprocess();

  PrintWidths(*query);
  std::printf("engine ready at eps=%.2f with %zu shard(s); type 'help' for commands\n", epsilon,
              engine->num_shards());

  std::string line;
  UpdateBatch pending;  // updates buffered between `batch begin` and `batch end`
  bool batching = false;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd.size() > 1 && cmd[0] == '\\') cmd.erase(0, 1);
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "shards") {
      long long n = 0;
      if (!(in >> n) || n < 1) {
        std::printf("! usage: shards N (N >= 1)\n");
        continue;
      }
      if (batching) {
        std::printf("! close the open batch first (batch end / batch abort)\n");
        continue;
      }
      if (static_cast<size_t>(n) > 1 && !ShardedEngine::CanShard(*query, &why)) {
        std::printf("! cannot shard this query: %s\n", why.c_str());
        continue;
      }
      // Rebuild: dump the live base relations, reload into a fresh engine
      // with the new shard count, re-preprocess. Update/rebalance counters
      // restart from zero.
      auto rebuilt = MakeEngine(*query, epsilon, static_cast<size_t>(n));
      for (const auto& name : query->RelationNames()) {
        rebuilt->Load(name, engine->DumpRelation(name));
      }
      rebuilt->Preprocess();
      engine = std::move(rebuilt);
      std::printf("rebuilt with %zu shard(s) over N=%zu (threads=%zu)\n", engine->num_shards(),
                  engine->database_size(), engine->num_threads());
    } else if (cmd == "batch") {
      std::string sub;
      in >> sub;
      if (sub == "begin" && batching) {
        std::printf("! batch already open (%zu buffered); 'batch end' or 'batch abort' first\n",
                    pending.size());
      } else if (sub == "begin") {
        batching = true;
        pending.clear();
        std::printf("batch open; +/- commands buffer until 'batch end'\n");
      } else if (sub == "end" && batching) {
        const auto result = engine->ApplyBatch(pending);
        std::printf("applied %zu updates as %zu net entries (%zu rejected) (N=%zu)\n",
                    pending.size(), result.applied, result.rejected, engine->database_size());
        batching = false;
        pending.clear();
      } else if (sub == "abort" && batching) {
        std::printf("dropped %zu buffered updates\n", pending.size());
        batching = false;
        pending.clear();
      } else {
        std::printf("! usage: batch begin|end|abort (end/abort need an open batch)\n");
      }
    } else if (cmd == "+" || cmd == "-") {
      std::string rel;
      if (!(in >> rel)) {
        std::printf("! expected a relation name\n");
        continue;
      }
      size_t arity = 0;
      bool known = false;
      for (const auto& atom : query->atoms()) {
        if (atom.relation == rel) {
          arity = atom.schema.size();
          known = true;
        }
      }
      if (!known) {
        std::printf("! unknown relation %s\n", rel.c_str());
        continue;
      }
      std::vector<Value> values;
      Value v = 0;
      while (in >> v) values.push_back(v);
      Mult mult = 1;
      if (values.size() == arity + 1) {
        mult = values.back();
        values.pop_back();
      }
      if (values.size() != arity) {
        std::printf("! %s has arity %zu\n", rel.c_str(), arity);
        continue;
      }
      if (cmd == "-") mult = -mult;
      if (batching) {
        pending.push_back(Update{rel, Tuple(std::move(values)), mult});
        std::printf("buffered (%zu pending)\n", pending.size());
        continue;
      }
      const bool ok = engine->ApplyUpdate(rel, Tuple(std::move(values)), mult);
      std::printf(ok ? "ok (N=%zu)\n" : "rejected (delete below zero) (N=%zu)\n",
                  engine->database_size());
    } else if (cmd == "?") {
      auto it = engine->Enumerate();
      Tuple t;
      Mult m = 0;
      size_t shown = 0;
      while (shown < 50 && it->Next(&t, &m)) {
        std::printf("  %s x%lld\n", t.ToString().c_str(), static_cast<long long>(m));
        ++shown;
      }
      size_t rest = 0;
      while (it->Next(&t, &m)) ++rest;
      if (rest > 0) std::printf("  ... and %zu more\n", rest);
      if (shown == 0) std::printf("  (empty)\n");
    } else if (cmd == "count") {
      auto it = engine->Enumerate();
      Tuple t;
      Mult m = 0;
      size_t count = 0;
      while (it->Next(&t, &m)) ++count;
      std::printf("%zu distinct tuples\n", count);
    } else if (cmd == "stats") {
      PrintStats(*engine, epsilon);
    } else if (cmd == "widths") {
      PrintWidths(*query);
    } else if (cmd == "trees") {
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        if (engine->num_shards() > 1) std::printf("--- shard %zu ---\n", s);
        std::printf("%s", engine->shard(s).DebugString().c_str());
      }
    } else if (cmd == "check") {
      std::string error;
      std::printf(engine->CheckInvariants(&error) ? "all invariants hold\n" : "FAILED: %s\n",
                  error.c_str());
    } else {
      std::printf("! unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
