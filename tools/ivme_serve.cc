// Minimal concurrent serving daemon over the sharded multi-query catalog:
// the dashboard_server telemetry workload (one stream, several registered
// panels) with the reads moved OFF the ingest thread. The main thread
// ingests consolidated batches while N reader threads serve panel queries
// from pinned epoch snapshots (ShardedCatalog::AcquireSnapshot +
// EnumerateAt, ARCHITECTURE.md §9) — every answer is a consistent
// batch-boundary state, never a mid-batch view, and readers never block
// ingestion.
//
//   ./tools/ivme_serve [events] [shards] [readers]
//
// Defaults: 48000 events, 1 shard, 2 readers. The process ingests the
// whole stream, reporting per-interval ingest rate, reads served, reader
// p99, the published epoch, retired-but-unreclaimed objects, and (at
// K > 1) the shard write-load imbalance ratio max/mean — 1.00 means the
// router spread the interval's writes perfectly; on shutdown it drains
// the reclamation queues and verifies invariants.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/sharded_catalog.h"

using namespace ivme;

namespace {

struct ReaderStats {
  std::mutex mu;
  size_t reads = 0;
  size_t rows = 0;
  std::vector<double> latencies_us;
};

double P99(std::vector<double>& us) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  return us[static_cast<size_t>(0.99 * static_cast<double>(us.size() - 1))];
}

}  // namespace

int main(int argc, char** argv) {
  const int events = argc > 1 ? std::atoi(argv[1]) : 48000;
  const size_t shards = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 1;
  const size_t readers = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 2;

  ShardedCatalogOptions catalog_options;
  catalog_options.num_shards = shards;
  ShardedCatalog catalog(catalog_options);
  EngineOptions options;
  options.epsilon = 0.5;
  options.rebalance_mode = RebalanceMode::kIncremental;

  // The dashboard panels. All three root on Device (column 0 everywhere),
  // so they shard consistently at any K.
  std::string why;
  const auto panels = std::vector<std::pair<std::string, std::string>>{
      {"devices", "Q(Device) = Metrics(Device, Sensor)"},
      {"placement", "Q(Device, Rack, Sensor) = Metrics(Device, Sensor), Fleet(Device, Rack)"},
      {"hotlist", "Q(Device, Sensor) = Metrics(Device, Sensor), Hot(Device)"},
  };
  for (const auto& [name, text] : panels) {
    const auto q = ConjunctiveQuery::Parse(text);
    IVME_CHECK(q.has_value());
    if (!catalog.RegisterQuery(name, *q, options, &why)) {
      std::fprintf(stderr, "cannot register %s: %s\n", name.c_str(), why.c_str());
      return 1;
    }
  }

  Rng rng(20260808);
  const Value devices = 1200, racks = 24, sensors = 64;
  for (Value d = 0; d < devices; ++d) {
    catalog.LoadTuple("Fleet", Tuple{d, d % racks}, 1);
    if (d % 37 == 0) catalog.LoadTuple("Hot", Tuple{d}, 1);
  }
  catalog.Preprocess();
  catalog.EnableServing();
  std::printf("serving: %zu panels, %zu shard(s), %zu reader(s), %zu store tuples, epoch %llu\n",
              catalog.num_queries(), catalog.num_shards(), readers, catalog.store_size(),
              static_cast<unsigned long long>(catalog.epoch_manager().published()));

  // Readers: each request pins the newest snapshot, drains one panel
  // (round-robin), and releases. A 1ms pause between requests keeps this a
  // demo, not a spin loop.
  std::atomic<bool> stop{false};
  std::vector<ReaderStats> stats(readers);
  std::vector<std::thread> pool;
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&catalog, &stop, &stats, &panels, r] {
      RowBuffer rows;  // slot reuse: steady-state drains allocate nothing
      constexpr size_t kChunk = 128;
      size_t turn = r;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& panel = panels[turn++ % panels.size()].first;
        const auto start = std::chrono::steady_clock::now();
        ReadSnapshot snapshot = catalog.AcquireSnapshot();
        auto it = catalog.EnumerateAt(panel, snapshot.epoch());
        size_t drained = 0;
        for (;;) {
          rows.Clear();
          const size_t got = it->FillBatch(&rows, kChunk);
          drained += got;
          if (got < kChunk) break;
        }
        it.reset();
        snapshot.Release();
        const double us =
            std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
                .count();
        {
          std::lock_guard<std::mutex> lock(stats[r].mu);
          ++stats[r].reads;
          stats[r].rows += drained;
          stats[r].latencies_us.push_back(us);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Ingest: the dashboard telemetry stream, batched at 128.
  std::vector<Tuple> live_metrics;
  std::vector<Value> hot;
  for (Value d = 0; d < devices; d += 37) hot.push_back(d);
  UpdateBatch batch;
  size_t applied = 0, batches = 0, last_reads = 0, last_rows = 0;
  auto interval_start = std::chrono::steady_clock::now();
  size_t interval_applied = 0;
  for (int e = 0; e < events; ++e) {
    const Value device =
        rng.Chance(0.5) ? rng.Range(0, devices / 50) : rng.Range(0, devices - 1);
    if (!live_metrics.empty() && rng.Chance(0.4)) {
      const size_t pick = rng.Below(live_metrics.size());
      batch.push_back(Update{"Metrics", live_metrics[pick], -1});
      live_metrics[pick] = live_metrics.back();
      live_metrics.pop_back();
    } else if (rng.Chance(0.02) && !hot.empty()) {
      const size_t pick = rng.Below(hot.size());
      batch.push_back(Update{"Hot", Tuple{hot[pick]}, -1});
      hot[pick] = hot.back();
      hot.pop_back();
    } else if (rng.Chance(0.02)) {
      const Value d = rng.Range(0, devices - 1);
      batch.push_back(Update{"Hot", Tuple{d}, 1});
      hot.push_back(d);
    } else {
      Tuple reading{device, rng.Range(0, sensors - 1)};
      live_metrics.push_back(reading);
      batch.push_back(Update{"Metrics", std::move(reading), 1});
    }
    if (batch.size() == 128) {
      applied += catalog.ApplyBatch(batch).applied;
      interval_applied += batch.size();
      batch.clear();
      ++batches;
      const auto now = std::chrono::steady_clock::now();
      const double elapsed = std::chrono::duration<double>(now - interval_start).count();
      if (elapsed >= 1.0) {
        size_t reads = 0, rows = 0;
        std::vector<double> window_us;
        for (auto& lane : stats) {
          std::lock_guard<std::mutex> lock(lane.mu);
          reads += lane.reads;
          rows += lane.rows;
          window_us.insert(window_us.end(), lane.latencies_us.begin(), lane.latencies_us.end());
          lane.latencies_us.clear();
        }
        std::printf("epoch %-6llu ingest %7.0f/s  reads %5zu (+%zu, %7.0f rows/s, p99 %.1f us)"
                    "  retired %zu",
                    static_cast<unsigned long long>(catalog.epoch_manager().published()),
                    static_cast<double>(interval_applied) / elapsed, reads, reads - last_reads,
                    static_cast<double>(rows - last_rows) / elapsed, P99(window_us),
                    catalog.RetiredObjects());
        if (catalog.num_shards() > 1) {
          std::printf("  imb %.2f", catalog.ComputeImbalance().max_mean);
        }
        std::printf("\n");
        last_reads = reads;
        last_rows = rows;
        interval_start = now;
        interval_applied = 0;
      }
    }
  }
  if (!batch.empty()) {
    applied += catalog.ApplyBatch(batch).applied;
    ++batches;
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : pool) thread.join();

  size_t total_reads = 0, total_rows = 0;
  for (auto& lane : stats) {
    total_reads += lane.reads;
    total_rows += lane.rows;
  }
  std::printf("shutdown: %d events in %zu batches (%zu net entries), %zu reads served "
              "(%zu rows), epoch %llu\n",
              events, batches, applied, total_reads, total_rows,
              static_cast<unsigned long long>(catalog.epoch_manager().published()));
  // The invariant check recomputes view storage, which itself retires nodes
  // in serving mode — so check first, then drain.
  std::string error;
  if (!catalog.CheckInvariants(&error)) {
    std::fprintf(stderr, "invariant violation: %s\n", error.c_str());
    return 1;
  }
  // Two idle publishes after the last reader unpins reclaim everything.
  catalog.ApplyBatch(UpdateBatch{});
  catalog.ApplyBatch(UpdateBatch{});
  if (catalog.RetiredObjects() != 0) {
    std::fprintf(stderr, "retired objects leaked after drain\n");
    return 1;
  }
  std::printf("invariants hold; reclamation queues drained\n");
  return 0;
}
